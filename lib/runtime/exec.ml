open Xdp.Ir
open Xdp_util
module Symtab = Xdp_symtab.Symtab
module State = Xdp_symtab.State
module Board = Xdp_sim.Board
module Costmodel = Xdp_sim.Costmodel
module Trace = Xdp_sim.Trace
module Faultplan = Xdp_net.Faultplan
module Transport = Xdp_net.Transport

exception Deadlock of string
exception Xdp_misuse of string

type engine = [ `Interp | `Compiled ]

let engine_names =
  [
    ("compiled", `Compiled);
    ("interp", `Interp);
    ("interpreter", `Interp);
    ("reference", `Interp);
  ]

(* The staged engine is the default; XDP_ENGINE=interp selects the
   tree-walking reference interpreter process-wide (what the CI matrix
   flips), read once at module initialization.  Unknown values fail
   loudly — a typo here would silently benchmark the wrong engine. *)
let default_engine : engine =
  match Sys.getenv_opt "XDP_ENGINE" with
  | None | Some "" -> `Compiled
  | Some s -> (
      match List.assoc_opt s engine_names with
      | Some e -> e
      | None ->
          invalid_arg
            (Printf.sprintf "XDP_ENGINE=%s: unknown engine (accepted: %s)" s
               (String.concat ", " (List.map fst engine_names))))

type frame =
  | Stmts of stmt list
  | Loop of {
      var : string;
      mutable cur : int;
      hi : int;
      step : int;
      body : stmt list;
    }
  | Code of { codes : Precompile.units; mutable ip : int }
  | Cloop of { cl : Precompile.loop; mutable ccur : int }

type blocked = { on_name : string; on_box : Box.t }

type proc = {
  pid : int; (* 0-based *)
  env : Evalexpr.env;
  st : Symtab.t;
  mutable stack : frame list;
  mutable clock : float;
  mutable busy : float;
  mutable status : [ `Ready | `Blocked of blocked | `Done ];
  mutable guard_evals : int;
  mutable guard_hits : int;
  mutable stmts_executed : int;
  mutable mach : Precompile.machine option;
}

type pending = { p_kind : Board.kind; p_into : string * Box.t }

(* Superinstruction accounting, kept out of {!Trace.stats} so the
   engine-parity checks can keep comparing whole stats records. *)
type fusion = { fused_turns : int; fused_statements : int }

type result = {
  arrays : (string * Tensor.t) list;
  stats : Trace.stats;
  trace : Trace.t;
  symtabs : Symtab.t array;
  fusion : fusion;
}

let array r name =
  match List.assoc_opt name r.arrays with
  | Some t -> t
  | None -> invalid_arg ("Exec.array: no array " ^ name)

let section_name arr box = arr ^ Box.to_string box

let run ?(engine = default_engine) ?staged ?(cost = Costmodel.message_passing)
    ?(kernels = Xdp.Kernels.default) ?(init = fun _ _ -> 0.0) ?(scalars = [])
    ?(trace = false) ?(free_on_release = true) ?(max_steps = 20_000_000)
    ?(fault = Faultplan.none) ?(net = Transport.default_config) ?(nic = [])
    ?(redist_stages = 0) ~nprocs (p : program) =
  if nprocs <= 0 then invalid_arg "Exec.run: nprocs <= 0";
  if staged <> None && engine = `Interp then
    invalid_arg "Exec.run: ~staged supplied but engine is `Interp";
  List.iter
    (fun d ->
      let np = Xdp_dist.Layout.nprocs d.layout in
      if np <> nprocs then
        invalid_arg
          (Printf.sprintf
             "Exec.run: array %s is laid out over %d processors but the \
              machine has %d"
             d.arr_name np nprocs))
    p.decls;
  Xdp.Wf.check_exn p;
  let tr = Trace.create ~enabled:trace in
  let board = Board.create cost in
  (* A fault plan interposes the reliable transport between the
     executor and the board; with the default (no-fault) plan the
     board is used directly and the fault-free code path is exact. *)
  let transport =
    if Faultplan.is_none fault then None
    else Some (Transport.create ~config:net ~plan:fault ~trace:tr board ~cost)
  in
  let wire_send ~time ~src ~name ~kind ~payload ~directed =
    match transport with
    | None -> Board.post_send board ~time ~src ~name ~kind ~payload ~directed
    | Some n ->
        Transport.post_send n ~time ~src ~name ~kind ~payload ~directed
  in
  (* The NIC fabric interposes above the board/transport: a directed
     value send to a processor with a program attached is offered to
     that NIC instead of going on the wire; everything the fabric
     emits re-enters through [wire_send] below it (and so pays full
     endpoint prices and suffers the fault plan).  Retransmits and
     duplicates happen strictly below this seam, which is what makes
     NIC programs idempotent under retransmit. *)
  let fabric =
    match nic with
    | [] -> None
    | specs -> (
        match
          Xdp_nic.Fabric.create ~nprocs ~cost ~trace:tr ~post:wire_send specs
        with
        | Ok f -> Some f
        | Error e -> invalid_arg ("Exec.run: " ^ e))
  in
  let post_send ~time ~src ~name ~kind ~payload ~directed =
    match (fabric, kind, directed) with
    | Some f, Board.Value, Some dsts
      when List.exists (Xdp_nic.Fabric.handles f) dsts ->
        let nicked, plain = List.partition (Xdp_nic.Fabric.handles f) dsts in
        if plain <> [] then
          wire_send ~time ~src ~name ~kind ~payload ~directed:(Some plain);
        List.iter
          (fun dst -> Xdp_nic.Fabric.offer f ~time ~src ~dst ~name ~payload)
          nicked
    | _ -> wire_send ~time ~src ~name ~kind ~payload ~directed
  in
  let post_recv ~time ~dst ~name ~kind ~token =
    match transport with
    | None -> Board.post_recv board ~time ~dst ~name ~kind ~token
    | Some n -> Transport.post_recv n ~time ~dst ~name ~kind ~token
  in
  let has_delivery () =
    match transport with
    | None -> Board.has_delivery board
    | Some n -> Transport.has_delivery n
  in
  let peek_delivery () =
    match transport with
    | None -> Board.peek_delivery board
    | Some n -> Transport.peek_delivery n
  in
  let pop_delivery () =
    match transport with
    | None -> Board.pop_delivery board
    | Some n -> Transport.pop_delivery n
  in
  let ownership_transfers = ref 0 in
  let total_steps = ref 0 in
  let fused_turns = ref 0 in
  let fused_stmts = ref 0 in
  (* Receives in flight per posting processor.  A fused run is only
     sound while its processor has none: with no pending receive, no
     delivery can mutate this processor's symbol table mid-run, and
     fused statements neither post nor consume board state, so the
     whole run commutes with every other event at its clock. *)
  let inflight = Array.make nprocs 0 in
  let pending : (int, int * pending) Hashtbl.t = Hashtbl.create 64 in
  let token_counter = ref 0 in
  let fresh_token () =
    incr token_counter;
    !token_counter
  in
  let procs =
    Array.init nprocs (fun pid ->
        let st = Symtab.create ~pid ~free_on_release () in
        List.iter
          (fun d ->
            (if d.universal then
               Symtab.declare_universal st ~name:d.arr_name
                 ~shape:(Xdp_dist.Layout.shape d.layout)
             else
               Symtab.declare st ~name:d.arr_name ~layout:d.layout
                 ~seg_shape:d.seg_shape);
            List.iter
              (fun (s : Symtab.seg) ->
                match s.data with
                | None -> ()
                | Some data ->
                    let i = ref 0 in
                    Box.iter
                      (fun idx ->
                        data.(!i) <- init d.arr_name idx;
                        incr i)
                      s.seg_box)
              (Symtab.segments st d.arr_name))
          p.decls;
        let env = Hashtbl.create 16 in
        List.iter (fun (v, x) -> Hashtbl.replace env v x) scalars;
        {
          pid;
          env;
          st;
          stack = [ Stmts p.body ];
          clock = 0.0;
          busy = 0.0;
          status = `Ready;
          guard_evals = 0;
          guard_hits = 0;
          stmts_executed = 0;
          mach = None;
        })
  in
  let shape_of name = Xdp_dist.Layout.shape (decl_of p name).layout in
  let charge_pr pr c =
    pr.clock <- pr.clock +. c;
    pr.busy <- pr.busy +. c
  in
  let hooks_of pr =
    let charge = charge_pr pr in
    let charged_desc f name box =
      let before = Symtab.descriptor_visits pr.st in
      let r = f name box in
      let visited = Symtab.descriptor_visits pr.st - before in
      charge (float_of_int visited *. cost.time_desc);
      r
    in
    {
      Evalexpr.mypid1 = pr.pid + 1;
      nprocs;
      shape_of;
      elem =
        (fun name idx ->
          if not (Symtab.owned_element pr.st name idx) then
            raise
              (Evalexpr.Unowned_ref
                 (section_name name (Box.point (Array.to_list idx))))
          else Symtab.get_a pr.st name idx);
      iown = charged_desc (Symtab.iown pr.st);
      accessible = charged_desc (Symtab.accessible pr.st);
      await =
        (fun name box ->
          match charged_desc (Symtab.section_state pr.st) name box with
          | State.Unowned -> false
          | State.Accessible -> true
          | State.Transitional -> raise (Evalexpr.Blocked_on (name, box)));
      mylb = (fun name box d -> Symtab.mylb pr.st name box d);
      myub = (fun name box d -> Symtab.myub pr.st name box d);
      charge;
      cm = cost;
      scratch = Evalexpr.Scratch.create ();
    }
  in
  (* One hooks value (and scratch pool) per processor for the whole
     run — the interpreter used to rebuild this record per statement. *)
  let hooks = Array.map hooks_of procs in
  let misuse_exn pr s =
    Xdp_misuse
      (Printf.sprintf "P%d at t=%.1f in %s: %s" (pr.pid + 1) pr.clock
         p.prog_name s)
  in
  let misuse pr fmt = Printf.ksprintf (fun s -> raise (misuse_exn pr s)) fmt in
  (* Transfer cores, shared verbatim by both engines: each takes a
     processor and an already-resolved section and owns the exact
     per-event charges and trace emissions. *)
  let send_value_core pr ~arr ~box ~dests =
    if not (Symtab.iown pr.st arr box) then
      misuse pr "value send of unowned section %s" (section_name arr box);
    let payload = Symtab.read_box pr.st arr box in
    let directed = dests () in
    charge_pr pr
      (cost.time_send_init
      +. (float_of_int (Array.length payload) *. cost.time_mem));
    let name = section_name arr box in
    Trace.emit tr
      (Trace.Send_init { time = pr.clock; pid = pr.pid; name; kind = "value" });
    post_send ~time:pr.clock ~src:pr.pid ~name ~kind:Board.Value ~payload
      ~directed
  in
  let send_ownership_core pr ~with_value ~arr ~box =
    (match Symtab.section_state pr.st arr box with
    | State.Unowned ->
        misuse pr "ownership send of unowned section %s"
          (section_name arr box)
    | State.Transitional ->
        (* Owner sends block until the section is accessible. *)
        raise (Evalexpr.Blocked_on (arr, box))
    | State.Accessible -> ());
    let payload = if with_value then Symtab.read_box pr.st arr box else [||] in
    let released = Symtab.release pr.st arr box in
    let nsegs = List.length released in
    incr ownership_transfers;
    charge_pr pr
      (cost.time_send_init
      +. (float_of_int nsegs *. cost.time_owner_admin)
      +. (float_of_int (Array.length payload) *. cost.time_mem));
    let kind = if with_value then Board.Owner_value else Board.Owner in
    let name = section_name arr box in
    Trace.emit tr
      (Trace.Send_init
         {
           time = pr.clock;
           pid = pr.pid;
           name;
           kind = Board.kind_to_string kind;
         });
    post_send ~time:pr.clock ~src:pr.pid ~name ~kind ~payload ~directed:None
  in
  let recv_ownership_core pr ~with_value ~arr ~box =
    (match Symtab.section_state pr.st arr box with
    | State.Unowned -> ()
    | State.Accessible | State.Transitional ->
        misuse pr
          "ownership receive of section %s some element of which is \
           already owned"
          (section_name arr box));
    Symtab.expect_ownership pr.st arr box;
    let token = fresh_token () in
    let kind = if with_value then Board.Owner_value else Board.Owner in
    Hashtbl.replace pending token
      (pr.pid, { p_kind = kind; p_into = (arr, box) });
    inflight.(pr.pid) <- inflight.(pr.pid) + 1;
    charge_pr pr (cost.time_recv_init +. cost.time_owner_admin);
    let name = section_name arr box in
    Trace.emit tr
      (Trace.Recv_init
         {
           time = pr.clock;
           pid = pr.pid;
           name;
           kind = Board.kind_to_string kind;
         });
    post_recv ~time:pr.clock ~dst:pr.pid ~name ~kind ~token
  in
  let recv_value_core pr ~into:(into_arr, into_box) ~from:(from_arr, from_box)
      =
    if not (Symtab.iown pr.st into_arr into_box) then
      misuse pr "receive into unowned section %s"
        (section_name into_arr into_box);
    if not (Symtab.accessible pr.st into_arr into_box) then
      (* Blocks until the destination is accessible (Figure 1). *)
      raise (Evalexpr.Blocked_on (into_arr, into_box));
    if Box.count into_box <> Box.count from_box then
      misuse pr "receive shape mismatch: %s <- %s"
        (section_name into_arr into_box)
        (section_name from_arr from_box);
    Symtab.mark_recv_init pr.st into_arr into_box;
    let token = fresh_token () in
    Hashtbl.replace pending token
      (pr.pid, { p_kind = Board.Value; p_into = (into_arr, into_box) });
    inflight.(pr.pid) <- inflight.(pr.pid) + 1;
    charge_pr pr cost.time_recv_init;
    let name = section_name from_arr from_box in
    Trace.emit tr
      (Trace.Recv_init { time = pr.clock; pid = pr.pid; name; kind = "value" });
    post_recv ~time:pr.clock ~dst:pr.pid ~name ~kind:Board.Value ~token
  in
  let apply_core pr ~fn (k : Xdp.Kernels.t) pairs =
    List.iter
      (fun (arr, box) ->
        if not (Symtab.iown pr.st arr box) then
          misuse pr "kernel %s applied to unowned section %s" fn
            (section_name arr box))
      pairs;
    let bufs = List.map (fun (arr, b) -> Symtab.read_box pr.st arr b) pairs in
    let flops = k.Xdp.Kernels.flops bufs in
    k.Xdp.Kernels.apply bufs;
    List.iter2
      (fun (arr, b) buf -> Symtab.write_box pr.st arr b buf)
      pairs bufs;
    let total_elems =
      List.fold_left (fun acc (_, b) -> acc + Box.count b) 0 pairs
    in
    charge_pr pr
      ((flops *. cost.time_flop)
      +. (2.0 *. float_of_int total_elems *. cost.time_mem))
  in
  let world_of pr =
    let h = hooks.(pr.pid) in
    {
      Precompile.w_pid1 = pr.pid + 1;
      w_nprocs = nprocs;
      w_st = pr.st;
      w_charge = h.Evalexpr.charge;
      w_iown = h.Evalexpr.iown;
      w_accessible = h.Evalexpr.accessible;
      w_await = h.Evalexpr.await;
      w_mylb = h.Evalexpr.mylb;
      w_myub = h.Evalexpr.myub;
      w_guard_eval = (fun () -> pr.guard_evals <- pr.guard_evals + 1);
      w_guard_hit = (fun () -> pr.guard_hits <- pr.guard_hits + 1);
      w_misuse = (fun s -> misuse_exn pr s);
      w_send_value =
        (fun ~arr ~box ~dests -> send_value_core pr ~arr ~box ~dests);
      w_send_owner =
        (fun ~with_value ~arr ~box ->
          send_ownership_core pr ~with_value ~arr ~box);
      w_recv_owner =
        (fun ~with_value ~arr ~box ->
          recv_ownership_core pr ~with_value ~arr ~box);
      w_recv_value = (fun ~into ~from -> recv_value_core pr ~into ~from);
      w_apply = (fun ~fn k pairs -> apply_core pr ~fn k pairs);
    }
  in
  (* Stage once, share the code across processors; each gets its own
     slot frames and inline caches.  A caller that runs the same
     program many times (the batch service) passes the staged [cprog]
     back in via [?staged] — it must have been compiled from this
     program with the same cost model, kernel registry and scalar
     preload, which the batch cache guarantees by keying on a digest
     of exactly those inputs. *)
  (match engine with
  | `Interp -> ()
  | `Compiled ->
      let cp =
        match staged with
        | Some cp -> cp
        | None -> Precompile.compile ~cost ~kernels ~scalars p
      in
      let codes = Precompile.body cp in
      Array.iter
        (fun pr ->
          pr.mach <- Some (Precompile.machine cp (world_of pr));
          pr.stack <- [ Code { codes; ip = 0 } ])
        procs);
  (* Execute one statement; raises Evalexpr.Blocked_on to request a
     retry once the named section becomes accessible. *)
  let exec_stmt pr s =
    let h = hooks.(pr.pid) in
    let charge = h.Evalexpr.charge in
    match s with
    | Assign (Lvar v, e) ->
        let x =
          try Evalexpr.eval h pr.env e
          with Evalexpr.Unowned_ref n ->
            misuse pr "read of unowned %s outside a compute rule" n
        in
        charge cost.time_mem;
        Hashtbl.replace pr.env v x
    | Assign (Lelem (a, idxs), e) ->
        let idx = List.map (Evalexpr.eval_int h pr.env) idxs in
        if not (Symtab.iown pr.st a (Box.point idx)) then
          misuse pr "write to unowned element %s"
            (section_name a (Box.point idx));
        let x =
          try Value.to_float (Evalexpr.eval h pr.env e)
          with Evalexpr.Unowned_ref n ->
            misuse pr "read of unowned %s outside a compute rule" n
        in
        charge cost.time_mem;
        Symtab.set pr.st a idx x
    | Guard (g, body) -> (
        pr.guard_evals <- pr.guard_evals + 1;
        match Evalexpr.eval_guard h pr.env g with
        | true ->
            pr.guard_hits <- pr.guard_hits + 1;
            pr.stack <- Stmts body :: pr.stack
        | false -> ())
    | For { var; lo; hi; step; body; _ } ->
        let lo = Evalexpr.eval_int h pr.env lo in
        let hi = Evalexpr.eval_int h pr.env hi in
        let step = Evalexpr.eval_int h pr.env step in
        if step <= 0 then misuse pr "non-positive loop step";
        charge cost.time_int_op;
        if lo <= hi then
          pr.stack <- Loop { var; cur = lo; hi; step; body } :: pr.stack
    | If (c, a, b) ->
        let v =
          try Value.to_bool (Evalexpr.eval h pr.env c)
          with Evalexpr.Unowned_ref n ->
            misuse pr "read of unowned %s in if-condition" n
        in
        pr.stack <- Stmts (if v then a else b) :: pr.stack
    | Send_value (s, dest) ->
        let box = Evalexpr.resolve_section h pr.env s in
        let dests =
          match dest with
          | Unspecified -> fun () -> None
          | Directed es ->
              fun () ->
                Some
                  (List.map
                     (fun e ->
                       let pid1 = Evalexpr.eval_int h pr.env e in
                       if pid1 < 1 || pid1 > nprocs then
                         misuse pr "send directed to invalid processor %d"
                           pid1;
                       pid1 - 1)
                     es)
        in
        send_value_core pr ~arr:s.arr ~box ~dests
    | Send_owner s ->
        let box = Evalexpr.resolve_section h pr.env s in
        send_ownership_core pr ~with_value:false ~arr:s.arr ~box
    | Send_owner_value s ->
        let box = Evalexpr.resolve_section h pr.env s in
        send_ownership_core pr ~with_value:true ~arr:s.arr ~box
    | Recv_value { into; from } ->
        let into_box = Evalexpr.resolve_section h pr.env into in
        let from_box = Evalexpr.resolve_section h pr.env from in
        recv_value_core pr ~into:(into.arr, into_box)
          ~from:(from.arr, from_box)
    | Recv_owner s ->
        let box = Evalexpr.resolve_section h pr.env s in
        recv_ownership_core pr ~with_value:false ~arr:s.arr ~box
    | Recv_owner_value s ->
        let box = Evalexpr.resolve_section h pr.env s in
        recv_ownership_core pr ~with_value:true ~arr:s.arr ~box
    | Apply { fn; args } -> (
        match Xdp.Kernels.find kernels fn with
        | None -> misuse pr "unknown kernel %s" fn
        | Some k ->
            let boxes = List.map (Evalexpr.resolve_section h pr.env) args in
            let pairs =
              List.map2 (fun (s : section) b -> (s.arr, b)) args boxes
            in
            apply_core pr ~fn k pairs)
  in
  let block pr name box =
    pr.status <- `Blocked { on_name = name; on_box = box };
    Trace.emit tr
      (Trace.Blocked
         { time = pr.clock; pid = pr.pid; on = section_name name box })
  in
  let count_step pr =
    incr total_steps;
    pr.stmts_executed <- pr.stmts_executed + 1;
    if !total_steps > max_steps then
      raise
        (Xdp_misuse (Printf.sprintf "step budget exceeded (%d)" max_steps))
  in
  (* One scheduler step of processor [pr]: pop and run the next
     statement, handling loops and blocking.  The compiled frames
     mirror the interpreted ones micro-step for micro-step: one
     statement per turn, block-exit pops and loop advances are their
     own turns, a blocked statement is retried from scratch. *)
  let step_proc pr =
    match pr.stack with
    | [] -> pr.status <- `Done
    | Stmts [] :: rest -> pr.stack <- rest
    | Stmts (s :: rest) :: frames -> (
        pr.stack <- Stmts rest :: frames;
        count_step pr;
        try exec_stmt pr s
        with Evalexpr.Blocked_on (name, box) ->
          (* Undo the pop; retry the statement when accessible. *)
          pr.stack <- Stmts (s :: rest) :: frames;
          block pr name box)
    | Loop l :: rest ->
        if l.cur > l.hi then pr.stack <- rest
        else begin
          Hashtbl.replace pr.env l.var (Value.VInt l.cur);
          l.cur <- l.cur + l.step;
          charge_pr pr cost.time_int_op;
          pr.stack <- Stmts l.body :: Loop l :: rest
        end
    | Code c :: frames -> (
        if c.ip >= Array.length c.codes then pr.stack <- frames
        else
          match c.codes.(c.ip) with
          | Precompile.U_fuse f when inflight.(pr.pid) = 0 ->
              (* the whole superinstruction runs in this turn; the
                 fused runner charges exactly what the statements
                 would and reports how many it executed *)
              c.ip <- c.ip + 1;
              let k = f.Precompile.fu_fast (Option.get pr.mach) in
              total_steps := !total_steps + k;
              pr.stmts_executed <- pr.stmts_executed + k;
              incr fused_turns;
              fused_stmts := !fused_stmts + k;
              if !total_steps > max_steps then
                raise
                  (Xdp_misuse
                     (Printf.sprintf "step budget exceeded (%d)" max_steps))
          | Precompile.U_fuse f ->
              (* a receive is in flight: its delivery must be able to
                 land between statements, so run the region one turn
                 at a time (an uncounted, uncharged frame push) *)
              c.ip <- c.ip + 1;
              pr.stack <- Code { codes = f.Precompile.fu_slow; ip = 0 } :: pr.stack
          | Precompile.U_stmt code -> (
              c.ip <- c.ip + 1;
              count_step pr;
              let m = Option.get pr.mach in
              match code m with
              | Precompile.A_next -> ()
              | Precompile.A_block codes ->
                  pr.stack <- Code { codes; ip = 0 } :: pr.stack
              | Precompile.A_loop cl ->
                  pr.stack <-
                    Cloop { cl; ccur = cl.Precompile.l_lo } :: pr.stack
              | exception Evalexpr.Blocked_on (name, box) ->
                  c.ip <- c.ip - 1;
                  block pr name box))
    | Cloop c :: rest ->
        let cl = c.cl in
        if c.ccur > cl.Precompile.l_hi then pr.stack <- rest
        else begin
          cl.Precompile.l_set (Option.get pr.mach) c.ccur;
          c.ccur <- c.ccur + cl.Precompile.l_step;
          charge_pr pr cost.time_int_op;
          pr.stack <- Code { codes = cl.Precompile.l_body; ip = 0 } :: pr.stack
        end
  in
  let apply_delivery (d : Board.delivery) =
    let pr = procs.(d.dst) in
    let poster, pend =
      match Hashtbl.find_opt pending d.token with
      | Some x -> x
      | None ->
          raise
            (Xdp_misuse
               (Printf.sprintf "delivery with unknown token for %s" d.name))
    in
    Hashtbl.remove pending d.token;
    inflight.(poster) <- inflight.(poster) - 1;
    let arr, box = pend.p_into in
    (match pend.p_kind with
    | Board.Value ->
        Symtab.write_box pr.st arr box d.payload;
        Symtab.mark_recv_complete pr.st arr box
    | Board.Owner -> Symtab.accept_ownership pr.st arr box None
    | Board.Owner_value ->
        Symtab.accept_ownership pr.st arr box (Some d.payload));
    Trace.emit tr
      (Trace.Delivered
         {
           time = d.arrival;
           src = d.src;
           dst = d.dst;
           name = d.name;
           kind = Board.kind_to_string d.kind;
           bytes = d.bytes;
         });
    (* Wake any processor whose blocking condition this satisfies. *)
    Array.iter
      (fun pr ->
        match pr.status with
        | `Blocked b
          when Symtab.accessible pr.st b.on_name b.on_box ->
            pr.status <- `Ready;
            pr.clock <- Float.max pr.clock d.arrival;
            Trace.emit tr (Trace.Unblocked { time = pr.clock; pid = pr.pid })
        | _ -> ())
      procs
  in
  (* Main discrete-event loop. *)
  let np = Array.length procs in
  (* Smallest (clock, pid) among ready processors, as an index (-1 for
     none).  Iteration is in ascending pid order and strict [<] keeps
     the earlier pid on clock ties, so this picks the same
     lexicographic winner as a (clock, pid) tuple compare — without
     allocating anything in the scheduler's innermost loop. *)
  let rec find_ready i bi =
    if i >= np then bi
    else
      let bi =
        let pr = Array.unsafe_get procs i in
        match pr.status with
        | `Ready when bi < 0 || pr.clock < procs.(bi).clock -> i
        | _ -> bi
      in
      find_ready (i + 1) bi
  in
  let rec loop () =
    let bi = find_ready 0 (-1) in
    if not (has_delivery ()) then
      if bi >= 0 then (
        step_proc procs.(bi);
        loop ())
      else finish ()
    else
      let d =
        match peek_delivery () with Some d -> d | None -> assert false
      in
      if bi < 0 || d.arrival <= procs.(bi).clock then (
        ignore (pop_delivery ());
        apply_delivery d;
        loop ())
      else (
        step_proc procs.(bi);
        loop ())
  and finish () =
        (* The waiting (pid, section) set, reported by every stuck-run
           diagnostic so the blocked rendezvous is always named. *)
        let waiting =
          Array.to_list procs
          |> List.filter_map (fun pr ->
                 match pr.status with
                 | `Blocked b ->
                     Some
                       (Printf.sprintf "P%d waits on %s" (pr.pid + 1)
                          (section_name b.on_name b.on_box))
                 | _ -> None)
        in
        let failed =
          match transport with
          | Some n -> Transport.failures n
          | None -> []
        in
        if failed <> [] then
          (* Not a compiler bug: the wire ate a matched message and the
             transport ran out of retries.  Name the dead links. *)
          raise
            (Transport.Link_failed
               (Printf.sprintf
                  "%s: blocked on messages dropped past max retries:\n\
                   %s\nwaiting:\n%s"
                  p.prog_name
                  (String.concat "\n"
                     (List.map
                        (fun f -> Format.asprintf "  %a" Transport.pp_failure f)
                        failed))
                  (String.concat "\n" waiting)))
        else if waiting <> [] then
          raise
            (Deadlock
               (Printf.sprintf
                  "%s: all processors blocked or done with nothing in \
                   flight (no messages lost — the program is missing a \
                   matching send or receive):\n%s\npending sends: %d, \
                   pending recvs: %d"
                  p.prog_name
                  (String.concat "\n" waiting)
                  (List.length (Board.pending_sends board))
                  (List.length (Board.pending_recvs board))
               ^ Printf.sprintf "\nsends: %s\nrecvs: %s"
                   (String.concat "; "
                      (List.map
                         (fun (n, _, src) -> Printf.sprintf "%s from P%d" n (src + 1))
                         (Board.pending_sends board)))
                   (String.concat "; "
                      (List.map
                         (fun (n, _, dst) -> Printf.sprintf "%s by P%d" n (dst + 1))
                         (Board.pending_recvs board)))))
  in
  loop ();
  (* A lost message with no blocked waiter would otherwise end the run
     with silently-wrong tensors; surface it. *)
  (match transport with
  | Some n when Transport.failures n <> [] ->
      raise
        (Transport.Link_failed
           (Printf.sprintf "%s: run completed but messages were lost:\n%s"
              p.prog_name
              (String.concat "\n"
                 (List.map
                    (fun f -> Format.asprintf "  %a" Transport.pp_failure f)
                    (Transport.failures n)))))
  | _ -> ());
  (* Gather distributed arrays into global tensors. *)
  let arrays =
    List.map
      (fun d ->
        let shape = Xdp_dist.Layout.shape d.layout in
        let t = Tensor.create shape in
        (* universal arrays may diverge per processor; gather P1's copy
           by convention *)
        let sources = if d.universal then [| procs.(0) |] else procs in
        Array.iter
          (fun pr ->
            List.iter
              (fun (s : Symtab.seg) ->
                match (s.status, s.data) with
                | State.Unowned, _ | _, None -> ()
                | _, Some data ->
                    (* segment storage is the row-major packing of its
                       box: unpack with the allocation-free blit *)
                    Tensor.blit t s.seg_box data)
              (Symtab.segments pr.st d.arr_name))
          sources;
        (d.arr_name, t))
      p.decls
  in
  let makespan =
    Array.fold_left (fun acc pr -> Float.max acc pr.clock) 0.0 procs
  in
  let stats =
    {
      Trace.makespan;
      messages = Board.messages_matched board;
      bytes = Board.bytes_matched board;
      ownership_transfers = !ownership_transfers;
      guard_evals =
        Array.fold_left (fun acc pr -> acc + pr.guard_evals) 0 procs;
      guard_hits =
        Array.fold_left (fun acc pr -> acc + pr.guard_hits) 0 procs;
      busy = Array.map (fun pr -> pr.busy) procs;
      finish = Array.map (fun pr -> pr.clock) procs;
      peak_storage = Array.map (fun pr -> Symtab.peak_elements pr.st) procs;
      statements = !total_steps;
      unmatched_sends = List.length (Board.pending_sends board);
      unmatched_recvs = List.length (Board.pending_recvs board);
      retransmits =
        (match transport with Some n -> Transport.retransmits n | None -> 0);
      acks = (match transport with Some n -> Transport.acks n | None -> 0);
      dup_suppressed =
        (match transport with
        | Some n -> Transport.dup_suppressed n
        | None -> 0);
      packets_dropped =
        (match transport with
        | Some n -> Transport.packets_dropped n
        | None -> 0);
      net_overhead_bytes =
        (match transport with
        | Some n -> Transport.overhead_bytes n
        | None -> 0);
      link_failures =
        (match transport with
        | Some n -> List.length (Transport.failures n)
        | None -> 0);
      nic_packets =
        (match fabric with Some f -> Xdp_nic.Fabric.packets f | None -> 0);
      nic_filtered =
        (match fabric with Some f -> Xdp_nic.Fabric.filtered f | None -> 0);
      nic_aggregated =
        (match fabric with Some f -> Xdp_nic.Fabric.absorbed f | None -> 0);
      nic_emitted =
        (match fabric with Some f -> Xdp_nic.Fabric.emitted f | None -> 0);
      nic_fanout_copies =
        (match fabric with
        | Some f -> Xdp_nic.Fabric.fanout_copies f
        | None -> 0);
      nic_msgs_saved =
        (match fabric with Some f -> Xdp_nic.Fabric.msgs_saved f | None -> 0);
      nic_bytes =
        (match fabric with
        | Some f -> Xdp_nic.Fabric.fabric_bytes f
        | None -> 0);
      peak_inflight_bytes =
        (* pad the board's highest-pid-seen array to the machine size *)
        (let raw = Board.peak_inflight board in
         Array.init nprocs (fun pid ->
             if pid < Array.length raw then raw.(pid) else 0));
      redist_stages;
    }
  in
  {
    arrays;
    stats;
    trace = tr;
    symtabs = Array.map (fun pr -> pr.st) procs;
    fusion = { fused_turns = !fused_turns; fused_statements = !fused_stmts };
  }

let ownership_defects r (p : program) =
  let unowned = ref 0 and multi = ref 0 in
  List.iter
    (fun d ->
      if d.universal then ()
      else
      let full = Box.of_shape (Xdp_dist.Layout.shape d.layout) in
      Box.iter
        (fun idx ->
          let owners =
            Array.fold_left
              (fun acc st ->
                if Symtab.iown st d.arr_name (Box.point idx) then acc + 1
                else acc)
              0 r.symtabs
          in
          if owners = 0 then incr unowned
          else if owners > 1 then incr multi)
        full)
    p.decls;
  (!unowned, !multi)
