open Xdp.Ir
open Xdp_util

(* This tree-walker is the semantic reference the staged engine
   (Precompile, DESIGN.md §4c/§4d) is held to bit for bit: its
   evaluation order, charge points, and the exact diagnostics below
   are all replicated by the compiled closures — [Unowned_ref] ends a
   fused superinstruction mid-flight exactly where it would abort a
   tree-walk here, and [Blocked_on] marks the abortable boundaries the
   fusion region analysis must never fuse across.  Changing anything
   observable in this module means changing Precompile in lockstep
   (the differential suite will catch a drift). *)

exception Unowned_ref of string
exception Blocked_on of string * Box.t

type env = (string, Value.t) Hashtbl.t

(* Reusable index buffers for [Elem] evaluation: one exact-size
   [int array] per (nesting depth, rank), grown lazily and reused for
   every element access — the interpreter's per-access [List.map]
   allocation removed.  Depth tracks Elem-inside-Elem nesting (e.g.
   [A[B[i]]]) so an inner access never clobbers the buffer an outer
   access is still filling. *)
module Scratch = struct
  type t = { mutable depth : int; mutable rows : int array array array }

  let create () = { depth = 0; rows = [||] }

  let buf t rank =
    if t.depth >= Array.length t.rows then begin
      let rows = Array.make (t.depth + 4) [||] in
      Array.blit t.rows 0 rows 0 (Array.length t.rows);
      t.rows <- rows
    end;
    let row = t.rows.(t.depth) in
    let row =
      if rank < Array.length row then row
      else begin
        let r = Array.make (rank + 4) [||] in
        Array.blit row 0 r 0 (Array.length row);
        t.rows.(t.depth) <- r;
        r
      end
    in
    if Array.length row.(rank) <> rank then row.(rank) <- Array.make rank 0;
    row.(rank)
end

type hooks = {
  mypid1 : int;
  nprocs : int;
  shape_of : string -> int list;
  elem : string -> int array -> float;
  iown : string -> Box.t -> bool;
  accessible : string -> Box.t -> bool;
  await : string -> Box.t -> bool;
  mylb : string -> Box.t -> int -> int option;
  myub : string -> Box.t -> int -> int option;
  charge : float -> unit;
  cm : Xdp_sim.Costmodel.t;
  scratch : Scratch.t;
}

let lookup env v =
  match Hashtbl.find_opt env v with
  | Some x -> x
  | None -> invalid_arg (Printf.sprintf "unbound scalar variable %s" v)

let rec eval h env e =
  match e with
  | Int n -> Value.VInt n
  | Float x -> Value.VFloat x
  | Bool b -> Value.VBool b
  | Var v -> lookup env v
  | Mypid -> Value.VInt h.mypid1
  | Nprocs -> Value.VInt h.nprocs
  | Elem (a, idxs) ->
      let sc = h.scratch in
      let d = sc.Scratch.depth in
      let buf = Scratch.buf sc (List.length idxs) in
      sc.Scratch.depth <- d + 1;
      let v =
        match
          fill_idx h env buf 0 idxs;
          h.charge h.cm.time_mem;
          h.elem a buf
        with
        | v -> v
        | exception e ->
            sc.Scratch.depth <- d;
            raise e
      in
      sc.Scratch.depth <- d;
      Value.VFloat v
  | Bin (op, a, b) ->
      (* [&&]/[||] short-circuit so that guards like
         [iown(X) and accessible(X)] do not query past a failure. *)
      h.charge h.cm.time_int_op;
      (match op with
      | And ->
          if Value.to_bool (eval h env a) then eval h env b
          else Value.VBool false
      | Or ->
          if Value.to_bool (eval h env a) then Value.VBool true
          else eval h env b
      | _ -> Value.binop op (eval h env a) (eval h env b))
  | Un (op, a) ->
      h.charge h.cm.time_int_op;
      Value.unop op (eval h env a)
  | Mylb (s, d) -> (
      let box = resolve_section h env s in
      match h.mylb s.arr box d with
      | Some i -> Value.VInt i
      | None -> Value.VInt max_int)
  | Myub (s, d) -> (
      let box = resolve_section h env s in
      match h.myub s.arr box d with
      | Some i -> Value.VInt i
      | None -> Value.VInt min_int)
  | Iown s ->
      let box = resolve_section h env s in
      Value.VBool (h.iown s.arr box)
  | Accessible s ->
      let box = resolve_section h env s in
      Value.VBool (h.accessible s.arr box)
  | Await s ->
      let box = resolve_section h env s in
      Value.VBool (h.await s.arr box)

and fill_idx h env buf i = function
  | [] -> ()
  | e :: es ->
      buf.(i) <- eval_int h env e;
      fill_idx h env buf (i + 1) es

and eval_int h env e =
  Value.to_int (eval h env e)

and resolve_section h env s =
  let shape = h.shape_of s.arr in
  if List.length s.sel <> List.length shape then
    invalid_arg
      (Printf.sprintf "section %s: rank mismatch" (Xdp.Pp.section_to_string s));
  let triplets =
    List.map2
      (fun sel extent ->
        match sel with
        | All -> Triplet.range 1 extent
        | At e -> Triplet.point (eval_int h env e)
        | Slice (lo, hi, st) ->
            Triplet.make ~lo:(eval_int h env lo) ~hi:(eval_int h env hi)
              ~stride:(eval_int h env st))
      s.sel shape
  in
  Box.make triplets

let eval_guard h env g =
  h.charge h.cm.time_guard;
  try Value.to_bool (eval h env g) with Unowned_ref _ -> false

let sequential_hooks ~shape_of ~elem ~cm =
  let full name box d =
    ignore name;
    Some (Triplet.first (Box.dim box d))
  and full_ub name box d =
    ignore name;
    Some (Triplet.last (Box.dim box d))
  in
  {
    mypid1 = 1;
    nprocs = 1;
    shape_of;
    elem;
    iown = (fun _ _ -> true);
    accessible = (fun _ _ -> true);
    await = (fun _ _ -> true);
    mylb = full;
    myub = full_ub;
    charge = (fun _ -> ());
    cm;
    scratch = Scratch.create ();
  }
