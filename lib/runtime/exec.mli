(** The SPMD machine executor: runs an IL+XDP program on P simulated
    processors (the operational semantics of Figure 1).

    Every processor executes the same program (SPMD); compute rules
    select statements per processor.  Execution is a deterministic
    discrete-event simulation: each processor has a local clock
    charged per the machine {!Xdp_sim.Costmodel}; transfer statements
    post to the rendezvous {!Xdp_sim.Board}; a processor that must
    wait (an [await] on a transitional section, an ownership send of a
    transitional section, a receive into a transitional section)
    blocks until the completing delivery arrives, at which point its
    clock advances to the arrival time.  The scheduler always steps
    the runnable processor with the smallest (clock, pid) and applies
    deliveries in arrival order, so identical inputs give identical
    traces.

    XDP's unsafety is preserved: reading a {e transitional} section is
    not checked (you get the bytes that are there); reading the value
    of an {e unowned} element outside a compute rule, writing an
    unowned element, sending a section you do not own, or transferring
    ownership of a partial segment are diagnosed as {!Xdp_misuse} —
    these are exactly the obligations the paper places on the
    compiler.  If every processor is blocked and nothing is in flight,
    {!Deadlock} is raised with a description of who waits on what.

    An optional {!Xdp_net.Faultplan} interposes the reliable
    transport ({!Xdp_net.Transport}) between the executor and the
    board: the wire may then drop, duplicate, reorder and slow
    messages, the transport recovers by ack/retransmit, and a message
    lost past the retry budget raises
    {!Xdp_net.Transport.Link_failed} naming the dead (src, dst,
    section) links — a stuck run is always diagnosed as either a
    program bug ({!Deadlock}: nothing was ever in flight) or a
    network failure ({!Link_failed}), never a silent hang. *)

open Xdp_util

exception Deadlock of string
exception Xdp_misuse of string

type engine = [ `Interp | `Compiled ]
(** [`Interp] is the tree-walking reference interpreter; [`Compiled]
    stages the program once into closures over mutable slot frames
    ({!Precompile}) and is observably identical: same arrays, same
    statistics (including [guard_evals] and [statements]), same trace
    events and diagnostics — verified per-run by the differential
    suite. *)

val default_engine : engine
(** [`Compiled], unless the process was started with
    [XDP_ENGINE=interp] (or [interpreter]/[reference]) in the
    environment — the switch the CI engine matrix flips.  Any other
    non-empty value raises [Invalid_argument] at module initialization,
    listing the accepted names ([compiled], [interp], [interpreter],
    [reference]) — a typo must not silently select an engine. *)

type fusion = { fused_turns : int; fused_statements : int }
(** Dynamic superinstruction accounting of a run: scheduler turns that
    executed a fused run, and the statements those turns covered.
    Zero under the interpreter, with fusion disabled, or when every
    fused unit fell back to statement-at-a-time execution.  Kept out
    of {!Xdp_sim.Trace.stats} deliberately: the stats record is
    compared field-for-field across engines by the differential
    suite. *)

type result = {
  arrays : (string * Tensor.t) list;  (** gathered global arrays *)
  stats : Xdp_sim.Trace.stats;
  trace : Xdp_sim.Trace.t;
  symtabs : Xdp_symtab.Symtab.t array;  (** final per-processor tables *)
  fusion : fusion;
}

val run :
  ?engine:engine ->
  ?staged:Precompile.cprog ->
  ?cost:Xdp_sim.Costmodel.t ->
  ?kernels:Xdp.Kernels.registry ->
  ?init:(string -> int list -> float) ->
  ?scalars:(string * Value.t) list ->
  ?trace:bool ->
  ?free_on_release:bool ->
  ?max_steps:int ->
  ?fault:Xdp_net.Faultplan.t ->
  ?net:Xdp_net.Transport.config ->
  ?nic:(int * Xdp_nic.Prog.t) list ->
  ?redist_stages:int ->
  nprocs:int ->
  Xdp.Ir.program ->
  result
(** [run ~nprocs p] — execute [p] on [nprocs] processors.  [engine]
    (default {!default_engine}) selects the staged engine or the
    reference interpreter; [staged] skips the one-time
    {!Precompile.compile} and reuses an already-staged program — the
    compile-once/run-many seam the batch service's digest-keyed cache
    drives.  The caller owns the coherence obligation: the [cprog]
    must have been compiled from this very program with the same
    [cost], [kernels] and [scalars] (the cache keys on a digest of all
    four), and a [cprog] must only be shared {e within} a domain —
    per-processor mutable state lives in the {!Precompile.machine}s
    built here, but cross-domain reuse is not part of the contract.
    Supplying [staged] with [engine = `Interp] is an
    [Invalid_argument].  A reused staged program is bit-identical to a
    fresh compile (enforced by the batch qcheck suite).  [init]
    seeds every owned element (applied identically by {!Seq}, enabling
    bit-for-bit verification); [scalars] preloads universal scalars on
    every processor; [trace] records an event log; [free_on_release]
    (default true) controls storage reuse on ownership sends
    (experiment T6); [max_steps] bounds total executed statements
    (default 20,000,000); [fault] (default {!Xdp_net.Faultplan.none})
    injects network faults and routes every message through the
    reliable transport configured by [net].

    [nic] attaches verified {!Xdp_nic.Prog} programs to processors
    ([(pid, program)], 0-based): every directed value send to a
    processor with a program attached is diverted through its NIC
    ({!Xdp_nic.Fabric}) before reaching the board, under the
    [nic_alpha]/[nic_beta]/[nic_op] cost axis.  The fabric sits above
    the transport, so NIC state never sees retransmits or duplicates
    — NIC programs are idempotent under faults.  Attach-time
    verification failures (ill-typed programs, forwarding cycles,
    forwarding to an unattached processor) raise [Invalid_argument]
    with the positioned diagnostic.
    @raise Xdp_net.Transport.Link_failed when a message is lost past
    the transport's retry budget.
    [redist_stages] (default 0) is static planner metadata recorded
    verbatim into [stats.redist_stages]: the caller that lowered a
    collective redistribution schedule ({!Xdp.Plan_redist}) passes the
    stage count so reports and batch records can carry it next to the
    measured [stats.peak_inflight_bytes].
    @raise Xdp_net.Transport.Link_failed when a message is lost past
    the transport's retry budget.
    @raise Xdp_nic.Fabric.Nic_misuse when an attached program
    misbehaves dynamically (computed target or slot out of range). *)

val array : result -> string -> Tensor.t

(** Elements of declared arrays owned by nobody / by several
    processors after the run ([(unowned, multiply_owned)] counts) —
    both should be zero for a correct program; checked by tests. *)
val ownership_defects : result -> Xdp.Ir.program -> int * int
