(** The staged execution engine: a one-time pass compiling an IL+XDP
    program into OCaml closures, removing the per-statement
    interpretation tax from the simulator's hot path (DESIGN.md §4c).

    What the tree-walking interpreter re-derives on every statement is
    resolved once here:

    - scalar names become integer slots in mutable frames — typed
      fixpoint inference assigns each variable an unboxed [int] or
      [float] slot when every binding agrees, with a boxed {!Value.t}
      slot as the dynamic fallback (no [Hashtbl] in the hot loop);
    - expressions compile through dedicated unboxed [int]/[float]/
      [bool] compilers, falling back to exact {!Value} semantics when
      a subexpression is dynamically typed;
    - element accesses get per-site inline caches of their backing
      segment (geometry + storage chunk), validated against the symbol
      table's {!Xdp_symtab.Symtab.generation} counter, so steady-state
      reads and writes are array loads/stores;
    - section resolutions whose subscripts are per-processor constants
      are memoized per machine;
    - cost charging is batched per straight-line region: chargeable op
      counts accumulate into a {!Xdp_sim.Costmodel.tally} at compile
      time and each region charges the model once per execution.

    The compiled program is {e observably identical} to the
    interpreter: identical arrays, statistics (including [guard_evals]
    and [statements]), trace events and misuse diagnostics, because
    every abort point (an [Unowned_ref], a [Blocked_on], a misuse
    error) ends its charge-batching region — charges that the
    interpreter applies before a potential abort are applied before it
    here too, and transfer statements keep their exact per-event
    charge points in {!Exec}'s shared transfer cores.

    The second staging level (DESIGN.md §4d) adds {e superinstruction
    fusion}: maximal runs of statements that can never raise
    [Blocked_on] (no transfer statements, no [await] anywhere in their
    expressions) are additionally compiled into a single fused closure
    that executes the whole run — loop nests included — in one
    scheduler turn.  Loop nests specialize further: a counted loop
    whose body is a single fixed-cost element store compiles into a
    native loop over the unboxed slot frame that charges one batched
    trips×tally cost; an [fft1D] [Apply] of the stock kernel inlines
    the {!Xdp.Kernels.dht_sub} call path over reusable machine
    buffers.  The scheduler decides per turn whether running fused is
    sound (no receive in flight for this processor) and otherwise
    falls back to the statement-at-a-time units, so traces, Gantt
    charts and fault interleavings are bit-identical either way. *)

open Xdp_util

(** The per-processor execution context a compiled program runs
    against, supplied by {!Exec}: charged intrinsic oracles, the
    charge sink, misuse diagnostics, and the transfer cores shared
    with the interpreter (which own the per-event charges for
    sends/receives/awaits). *)
type world = {
  w_pid1 : int;  (** 1-based pid *)
  w_nprocs : int;
  w_st : Xdp_symtab.Symtab.t;
  w_charge : float -> unit;
  w_iown : string -> Box.t -> bool;  (** descriptor-charged *)
  w_accessible : string -> Box.t -> bool;  (** descriptor-charged *)
  w_await : string -> Box.t -> bool;
      (** descriptor-charged; raises [Blocked_on] on transitional *)
  w_mylb : string -> Box.t -> int -> int option;
  w_myub : string -> Box.t -> int -> int option;
  w_guard_eval : unit -> unit;
  w_guard_hit : unit -> unit;
  w_misuse : string -> exn;
      (** wraps a diagnostic in [Exec.Xdp_misuse] with pid/clock
          context captured at raise time *)
  w_send_value :
    arr:string -> box:Box.t -> dests:(unit -> int list option) -> unit;
  w_send_owner : with_value:bool -> arr:string -> box:Box.t -> unit;
  w_recv_owner : with_value:bool -> arr:string -> box:Box.t -> unit;
  w_recv_value : into:string * Box.t -> from:string * Box.t -> unit;
  w_apply : fn:string -> Xdp.Kernels.t -> (string * Box.t) list -> unit;
}

type machine
(** The mutable state of one processor's compiled execution: slot
    frames, per-site inline caches, and its {!world}. *)

(** What executing one compiled statement asks the scheduler to do
    next; mirrors the interpreter's frame discipline exactly (one
    statement per scheduler micro-step, loop advances are their own
    charged micro-steps). *)
type act =
  | A_next  (** fall through to the next statement *)
  | A_block of units  (** push a nested block *)
  | A_loop of loop  (** push an entered loop (bounds already checked) *)

and code = machine -> act

(** One schedulable unit of a compiled block: a single statement (one
    scheduler turn per act) or a fused superinstruction. *)
and unit_ = U_stmt of code | U_fuse of fuse

and units = unit_ array

and fuse = {
  fu_fast : machine -> int;
      (** execute the whole run in this turn; returns the number of
          statements executed (loop iterations included), which the
          scheduler adds to the step counters.  Only sound when the
          processor has no receive in flight. *)
  fu_slow : units;  (** the same statements, one scheduler turn each *)
  fu_len : int;  (** top-level statements in the run *)
}

and loop = {
  l_lo : int;
  l_hi : int;
  l_step : int;
  l_set : machine -> int -> unit;  (** bind the loop variable's slot *)
  l_body : units;
}

type cprog
(** A compiled program: machine-independent code plus the slot/site
    layout needed to build per-processor {!machine}s. *)

val fuse_default : bool
(** Whether {!compile} fuses by default: true unless the environment
    sets [XDP_NO_FUSE] to a non-empty value other than ["0"]. *)

(** [compile ?fuse ~cost ~kernels ~scalars p] — stage [p] once; the
    result is shared by all processors.  [scalars] must be the same
    preload list given to {!Exec.run} (it seeds slot types and initial
    values).  [fuse] (default {!fuse_default}) controls the
    superinstruction pass; with it off every unit is a [U_stmt] and
    the engine behaves exactly like the first staging level. *)
val compile :
  ?fuse:bool ->
  cost:Xdp_sim.Costmodel.t ->
  kernels:Xdp.Kernels.registry ->
  scalars:(string * Value.t) list ->
  Xdp.Ir.program ->
  cprog

val body : cprog -> units

(** Static statistics of the superinstruction pass, accumulated at
    compile time (all zero when fusion is off). *)
type fusion_stats = {
  fs_statements : int;  (** statements compiled *)
  fs_fusable : int;  (** statements with a fused form *)
  fs_fused_units : int;  (** superinstructions emitted *)
  fs_run_hist : (int * int) list;
      (** run length -> count, sorted by length *)
  fs_spec_loops : int;  (** natively specialized loop statements *)
  fs_batched_loops : int;  (** loops charging one batched tally *)
  fs_inlined_kernels : int;  (** inlined kernel call sites *)
  fs_blockers : (string * int) list;
      (** why statements have no fused form: blocking reason -> count,
          sorted by reason.  Reasons: ["transfer"] (the statement posts
          or consumes board state and may raise [Blocked_on]),
          ["await-in-guard"]/["await-in-expr"]/["await-in-bounds"]/
          ["await-in-cond"]/["await-in-args"] (an [await] intrinsic in
          the named position), ["unknown-kernel"].  Compound statements
          report the first blocked inner statement's reason, so a
          transfer-bound copy loop (the misaligned vecadd gap) shows
          up as ["transfer"], not a generic blocked-body.  Empty with
          fusion off; with fusion on the counts sum to
          [fs_statements - fs_fusable]. *)
}

val fusion_stats : cprog -> fusion_stats

val fusion_digest : cprog -> string
(** Hex digest of a canonical rendering of {!fusion_stats} — pinned by
    the golden tests so the fusion pass's region analysis cannot drift
    silently. *)

(** [machine cp w] — fresh per-processor state (slots seeded from the
    scalar preload, caches cold). *)
val machine : cprog -> world -> machine
