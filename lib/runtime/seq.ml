open Xdp.Ir
open Xdp_util

type result = {
  arrays : (string * Tensor.t) list;
  scalars : (string * Value.t) list;
}

let array r name =
  match List.assoc_opt name r.arrays with
  | Some t -> t
  | None -> invalid_arg ("Seq.array: no array " ^ name)

let run ?(kernels = Xdp.Kernels.default) ?(init = fun _ _ -> 0.0)
    ?(scalars = []) (p : program) =
  let tensors = Hashtbl.create 8 in
  List.iter
    (fun d ->
      let shape = Xdp_dist.Layout.shape d.layout in
      Hashtbl.replace tensors d.arr_name
        (Tensor.init shape (init d.arr_name)))
    p.decls;
  let env : Evalexpr.env = Hashtbl.create 16 in
  List.iter (fun (v, x) -> Hashtbl.replace env v x) scalars;
  let tensor name =
    match Hashtbl.find_opt tensors name with
    | Some t -> t
    | None -> invalid_arg ("Seq: undeclared array " ^ name)
  in
  let hooks =
    Evalexpr.sequential_hooks
      ~shape_of:(fun name -> Tensor.shape (tensor name))
      ~elem:(fun name idx -> Tensor.get_a (tensor name) idx)
      ~cm:Xdp_sim.Costmodel.idealized
  in
  let rec stmt = function
    | Assign (Lvar v, e) -> Hashtbl.replace env v (Evalexpr.eval hooks env e)
    | Assign (Lelem (a, idxs), e) ->
        let idx = List.map (Evalexpr.eval_int hooks env) idxs in
        let v = Value.to_float (Evalexpr.eval hooks env e) in
        Tensor.set (tensor a) idx v
    | For { var; lo; hi; step; body; _ } ->
        let lo = Evalexpr.eval_int hooks env lo in
        let hi = Evalexpr.eval_int hooks env hi in
        let step = Evalexpr.eval_int hooks env step in
        if step <= 0 then invalid_arg "Seq: non-positive loop step";
        let i = ref lo in
        while !i <= hi do
          Hashtbl.replace env var (Value.VInt !i);
          List.iter stmt body;
          i := !i + step
        done
    | If (c, a, b) ->
        if Value.to_bool (Evalexpr.eval hooks env c) then List.iter stmt a
        else List.iter stmt b
    | Apply { fn; args } -> (
        match Xdp.Kernels.find kernels fn with
        | None -> invalid_arg ("Seq: unknown kernel " ^ fn)
        | Some k ->
            let boxes =
              List.map (Evalexpr.resolve_section hooks env) args
            in
            let bufs =
              List.map2 (fun s b -> Tensor.extract (tensor s.arr) b) args
                boxes
            in
            k.apply bufs;
            List.iter2
              (fun (s, b) buf -> Tensor.blit (tensor s.arr) b buf)
              (List.combine args boxes)
              bufs)
    | Guard _ | Send_value _ | Send_owner _ | Send_owner_value _
    | Recv_value _ | Recv_owner _ | Recv_owner_value _ ->
        invalid_arg "Seq: XDP construct in sequential program"
  in
  List.iter stmt p.body;
  {
    arrays =
      List.map (fun d -> (d.arr_name, tensor d.arr_name)) p.decls;
    scalars = Hashtbl.fold (fun k v acc -> (k, v) :: acc) env [];
  }
