open Xdp.Ir
open Xdp_util
module Symtab = Xdp_symtab.Symtab
module State = Xdp_symtab.State
module Costmodel = Xdp_sim.Costmodel

type world = {
  w_pid1 : int;
  w_nprocs : int;
  w_st : Symtab.t;
  w_charge : float -> unit;
  w_iown : string -> Box.t -> bool;
  w_accessible : string -> Box.t -> bool;
  w_await : string -> Box.t -> bool;
  w_mylb : string -> Box.t -> int -> int option;
  w_myub : string -> Box.t -> int -> int option;
  w_guard_eval : unit -> unit;
  w_guard_hit : unit -> unit;
  w_misuse : string -> exn;
  w_send_value :
    arr:string -> box:Box.t -> dests:(unit -> int list option) -> unit;
  w_send_owner : with_value:bool -> arr:string -> box:Box.t -> unit;
  w_recv_owner : with_value:bool -> arr:string -> box:Box.t -> unit;
  w_recv_value : into:string * Box.t -> from:string * Box.t -> unit;
  w_apply : fn:string -> Xdp.Kernels.t -> (string * Box.t) list -> unit;
}

(* One piece of a memoized kernel marshalling plan: the slice of the
   applied section backed by one segment chunk, with its copy runs
   precomputed.  A plan revalidates against the current table by
   checking each piece's descriptor directly (still owned, same
   chunk); when the newly applied section is the cached one translated
   along a single dimension, every run merely shifts by a constant
   chunk offset. *)
type kpiece = {
  kp_seg : Symtab.seg; (* the backing descriptor *)
  kp_data : float array; (* its chunk at plan-build time *)
  kp_piece : Box.t; (* intersection with the cached section *)
  kp_w : int array; (* row-major weights of the segment box *)
  kp_runs : (int * int * int) array; (* (chunk_off, buf_off, len) *)
  mutable kp_shift : int; (* chunk-offset shift of the current call *)
}

(* A site is the per-machine mutable state of one static program
   point: the index scratch buffer of an element access plus an
   inline cache of the backing segment (geometry and storage chunk,
   valid while the symbol table generation is unchanged), or the
   memoized box of a statically-resolvable section. *)
type site = {
  s_idx : int array;
  mutable s_gen : int; (* Symtab.generation at fill; min_int = cold *)
  mutable s_data : float array;
  mutable s_lo : int array;
  mutable s_hi : int array;
  mutable s_stride : int array;
  mutable s_cnt : int array;
  mutable s_box : Box.t option; (* memoized constant section *)
  (* intrinsic-query inline cache: while the symbol table generation
     is unchanged, an iown/accessible/await on the same box has the
     same answer and the same descriptor-visit charge *)
  mutable s_qgen : int; (* generation at cached query; min_int = cold *)
  mutable s_qbox : Box.t option;
  mutable s_qstate : State.t;
  mutable s_qvisits : int;
  (* kernel marshalling-plan cache (inlined kernel path): the piece
     decomposition of the last applied section, revalidated per call
     against the descriptors themselves *)
  mutable s_kbox : Box.t option;
  mutable s_kpieces : kpiece array;
  mutable s_ktotal : int; (* elements covered; a hit requires a full cover *)
}

type machine = {
  m_pid1 : int;
  m_ints : int array;
  m_flts : float array;
  m_vals : Value.t array;
  m_bnd : Bytes.t; (* per-variable bound flags *)
  m_sites : site array;
  m_w : world;
  (* reusable payload/scratch buffers of the inlined kernel path *)
  mutable m_kbuf : float array;
  mutable m_ktmp : float array;
}

type act = A_next | A_block of units | A_loop of loop
and code = machine -> act

(* One schedulable unit of a compiled block: either a single statement
   (one scheduler turn per act, the PR3 discipline) or a fused
   superinstruction — a maximal run of statements that can never block
   on a transfer, executed by [fu_fast] in a single scheduler turn.
   [fu_slow] is the same run statement-at-a-time; the scheduler falls
   back to it whenever fusing could reorder an observable event (the
   processor has a receive in flight). *)
and unit_ = U_stmt of code | U_fuse of fuse
and units = unit_ array

and fuse = {
  fu_fast : machine -> int;  (** run everything; returns statements executed *)
  fu_slow : units;  (** the same statements, one scheduler turn each *)
  fu_len : int;  (** top-level statements in the run *)
}

and loop = {
  l_lo : int;
  l_hi : int;
  l_step : int;
  l_set : machine -> int -> unit;
  l_body : units;
}

(* ------------------------------------------------------------------ *)
(* Static scalar types.  A variable gets an unboxed slot only when
   every binding (scalar preload, loop header, assignment) agrees on
   one concrete type; [SInt] and [SFloat] do NOT join to [SFloat]
   because integer and float division/modulo differ, so mixed
   variables stay boxed with exact Value semantics. *)

type sty = SBot | SInt | SFloat | SBool | SDyn

let join a b =
  if a = b then a
  else match (a, b) with SBot, x | x, SBot -> x | _ -> SDyn

let var_ty tys miss v =
  match Hashtbl.find_opt tys v with
  | Some SBot | None -> miss
  | Some t -> t

let rec ty_of tys miss e =
  match e with
  | Int _ | Mypid | Nprocs | Mylb _ | Myub _ -> SInt
  | Float _ | Elem _ -> SFloat
  | Bool _ | Iown _ | Accessible _ | Await _ -> SBool
  | Var v -> var_ty tys miss v
  | Un (Neg, a) -> (
      match ty_of tys miss a with
      | (SInt | SFloat | SBot) as t -> t
      | _ -> SDyn)
  | Un (Not, _) -> SBool
  | Bin (op, a, b) -> (
      let ta = ty_of tys miss a and tb = ty_of tys miss b in
      match op with
      | Eq | Ne | Lt | Le | Gt | Ge -> SBool
      | And | Or -> (
          (* the result is [b]'s value (or a boolean constant), so
             only [b]'s type matters *)
          match tb with SBool -> SBool | SBot -> SBot | _ -> SDyn)
      | Mod -> (
          match (ta, tb) with
          | SBot, _ | _, SBot -> SBot
          | SInt, SInt -> SInt
          | _ -> SDyn)
      | Add | Sub | Mul | Div | Min | Max -> (
          match (ta, tb) with
          | SBot, _ | _, SBot -> SBot
          | SInt, SInt -> SInt
          | (SInt | SFloat), (SInt | SFloat) -> SFloat
          | _ -> SDyn))

(* All scalar names appearing in the program or the preload, in first
   occurrence order (stable slot numbering). *)
let collect_vars (p : program) scalars =
  let seen = Hashtbl.create 32 in
  let order = ref [] in
  let note v =
    if not (Hashtbl.mem seen v) then begin
      Hashtbl.add seen v ();
      order := v :: !order
    end
  in
  List.iter (fun (v, _) -> note v) scalars;
  let rec ex = function
    | Int _ | Float _ | Bool _ | Mypid | Nprocs -> ()
    | Var v -> note v
    | Elem (_, es) -> List.iter ex es
    | Bin (_, a, b) ->
        ex a;
        ex b
    | Un (_, a) -> ex a
    | Mylb (s, _) | Myub (s, _) | Iown s | Accessible s | Await s -> sec s
  and sec s =
    List.iter
      (function
        | All -> ()
        | At e -> ex e
        | Slice (a, b, c) ->
            ex a;
            ex b;
            ex c)
      s.sel
  and st = function
    | Assign (Lvar v, e) ->
        note v;
        ex e
    | Assign (Lelem (_, idxs), e) ->
        List.iter ex idxs;
        ex e
    | Guard (g, body) ->
        ex g;
        List.iter st body
    | For { var; lo; hi; step; body; _ } ->
        note var;
        ex lo;
        ex hi;
        ex step;
        List.iter st body
    | If (c, a, b) ->
        ex c;
        List.iter st a;
        List.iter st b
    | Send_value (s, d) -> (
        sec s;
        match d with Unspecified -> () | Directed es -> List.iter ex es)
    | Send_owner s | Send_owner_value s | Recv_owner s | Recv_owner_value s ->
        sec s
    | Recv_value { into; from } ->
        sec into;
        sec from
    | Apply { args; _ } -> List.iter sec args
  in
  List.iter st p.body;
  List.rev !order

let infer_types (p : program) scalars vars =
  let tys = Hashtbl.create 32 in
  let cur v = match Hashtbl.find_opt tys v with Some t -> t | None -> SBot in
  let changed = ref true in
  let bind v t =
    let nt = join (cur v) t in
    if nt <> cur v then begin
      Hashtbl.replace tys v nt;
      changed := true
    end
  in
  List.iter
    (fun (v, x) ->
      bind v
        (match x with
        | Value.VInt _ -> SInt
        | Value.VFloat _ -> SFloat
        | Value.VBool _ -> SBool))
    scalars;
  let rec st = function
    | Assign (Lvar v, e) -> bind v (ty_of tys SBot e)
    | For { var; body; _ } ->
        bind var SInt;
        List.iter st body
    | Guard (_, body) -> List.iter st body
    | If (_, a, b) ->
        List.iter st a;
        List.iter st b
    | _ -> ()
  in
  while !changed do
    changed := false;
    List.iter st p.body
  done;
  (* never-bound or unresolvable variables execute through the boxed
     path (an unbound read still raises at run time) *)
  List.iter
    (fun v ->
      match Hashtbl.find_opt tys v with
      | None | Some SBot -> Hashtbl.replace tys v SDyn
      | Some _ -> ())
    vars;
  tys

type kind = KInt | KFloat | KVal
type slot = { v_kind : kind; v_off : int; v_id : int }

type ctx = {
  cm : Costmodel.t;
  kernels : Xdp.Kernels.registry;
  tys : (string, sty) Hashtbl.t;
  slots : (string, slot) Hashtbl.t;
  shape_of : string -> int list;
  mutable nsites : int;
  mutable site_ranks : int list; (* reversed *)
  fuse : bool; (* superinstruction fusion enabled *)
  (* Quiet compilation: the body of a batch-charged loop compiles with
     every charge diverted into [qtally] at compile time (the body's
     cost structure is statically fixed — enforced by [fixed_cost_e]),
     so the loop charges trips * tally once and runs charge-free
     bodies. *)
  mutable quiet : bool;
  mutable qtally : Costmodel.tally;
  (* fusion statistics (static, accumulated during compilation) *)
  mutable fs_total : int; (* statements compiled *)
  mutable fs_fusable : int; (* statements with a fused form *)
  mutable fs_units : int; (* fused superinstructions emitted *)
  mutable fs_run_hist : (int * int) list; (* run length -> count, unsorted *)
  mutable fs_loops : int; (* natively specialized loop statements *)
  mutable fs_batched : int; (* loops charging one batched tally *)
  mutable fs_kernels : int; (* inlined kernel call sites *)
  mutable fs_blockers : (string * int) list; (* blocking reason -> count *)
}

let record_run ctx len =
  ctx.fs_units <- ctx.fs_units + 1;
  ctx.fs_run_hist <-
    (match List.assoc_opt len ctx.fs_run_hist with
    | Some n -> (len, n + 1) :: List.remove_assoc len ctx.fs_run_hist
    | None -> (len, 1) :: ctx.fs_run_hist)

let record_blocker ctx reason =
  ctx.fs_blockers <-
    (match List.assoc_opt reason ctx.fs_blockers with
    | Some n -> (reason, n + 1) :: List.remove_assoc reason ctx.fs_blockers
    | None -> (reason, 1) :: ctx.fs_blockers)

let ty ctx e = ty_of ctx.tys SDyn e

let slot ctx v =
  match Hashtbl.find_opt ctx.slots v with
  | Some s -> s
  | None -> assert false (* collect_vars saw every name *)

let new_site ctx rank =
  let k = ctx.nsites in
  ctx.nsites <- k + 1;
  ctx.site_ranks <- rank :: ctx.site_ranks;
  k

(* ------------------------------------------------------------------ *)
(* The staging framework: a compiled fragment carries the statically
   known cost of its non-aborting prefix (a Costmodel.tally, turned
   into one charge by the consumer), an "aborts" flag, and the run
   closure.  Composition folds costs left to right until the first
   fragment that may abort (raise Unowned_ref/Blocked_on or perform
   runtime-valued charges); everything after such a fragment charges
   itself at run time, preserving the interpreter's exact clock at
   every abort point. *)

type 'a frag = { cost : Costmodel.tally; ab : bool; run : machine -> 'a }

let pure x = { cost = Costmodel.tally_zero; ab = false; run = (fun _ -> x) }
let lift f = { cost = Costmodel.tally_zero; ab = false; run = f }
let map f p = { p with run = (fun m -> f (p.run m)) }

(* Charge the fragment's static head cost, then run it.  Under quiet
   compilation all charges divert into the context tally instead (the
   caller charges the accumulated total once per execution). *)
let charged ctx p =
  if ctx.quiet then begin
    ctx.qtally <- Costmodel.tally_add ctx.qtally p.cost;
    p.run
  end
  else if Costmodel.tally_is_zero p.cost then p.run
  else
    let c = Costmodel.tally_cost ctx.cm p.cost in
    fun m ->
      m.m_w.w_charge c;
      p.run m

(* Prefix cost (charged before the fragment runs). *)
let tcost ctx t p =
  if ctx.quiet then begin
    ctx.qtally <- Costmodel.tally_add ctx.qtally t;
    p
  end
  else { p with cost = Costmodel.tally_add t p.cost }

(* Cost charged after the fragment's value is produced; folds into the
   static head when the fragment cannot abort. *)
let post ctx t p =
  if ctx.quiet then begin
    ctx.qtally <- Costmodel.tally_add ctx.qtally t;
    p
  end
  else if not p.ab then { p with cost = Costmodel.tally_add p.cost t }
  else if Costmodel.tally_is_zero t then p
  else
    let c = Costmodel.tally_cost ctx.cm t in
    {
      p with
      run =
        (fun m ->
          let x = p.run m in
          m.m_w.w_charge c;
          x);
    }

(* Run [a] then [b], combining with [f]; left-to-right, costs fold
   across the pair while [a] cannot abort. *)
let map2 ctx f a b =
  if not a.ab then
    {
      cost = Costmodel.tally_add a.cost b.cost;
      ab = b.ab;
      run =
        (fun m ->
          let x = a.run m in
          f x (b.run m));
    }
  else
    let br = charged ctx b in
    {
      cost = a.cost;
      ab = true;
      run =
        (fun m ->
          let x = a.run m in
          f x (br m));
    }

let seq2 ctx (a : unit frag) b =
  if not a.ab then
    {
      cost = Costmodel.tally_add a.cost b.cost;
      ab = b.ab;
      run =
        (fun m ->
          a.run m;
          b.run m);
    }
  else
    let br = charged ctx b in
    {
      cost = a.cost;
      ab = true;
      run =
        (fun m ->
          a.run m;
          br m);
    }

let rec seq_list ctx = function
  | [] -> pure []
  | p :: rest -> map2 ctx (fun x xs -> x :: xs) p (seq_list ctx rest)

(* ------------------------------------------------------------------ *)
(* Element-access inline caches. *)

let fresh_site rank =
  {
    s_idx = Array.make rank 0;
    s_gen = min_int;
    s_data = [||];
    s_lo = Array.make rank 0;
    s_hi = Array.make rank 0;
    s_stride = Array.make rank 1;
    s_cnt = Array.make rank 1;
    s_box = None;
    s_qgen = min_int;
    s_qbox = None;
    s_qstate = State.Unowned;
    s_qvisits = 0;
    s_kbox = None;
    s_kpieces = [||];
    s_ktotal = 0;
  }

(* Row-major offset of the site's scratch index in the cached segment
   geometry (Horner form), or -1 when the index is outside it. *)
let rec site_off s d n acc =
  if d >= n then acc
  else
    let i = s.s_idx.(d) in
    let k = i - s.s_lo.(d) in
    let st = s.s_stride.(d) in
    if k < 0 || i > s.s_hi.(d) || k mod st <> 0 then -1
    else site_off s (d + 1) n ((acc * s.s_cnt.(d)) + (k / st))

let fill_site st s (seg : Symtab.seg) =
  match seg.Symtab.data with
  | None -> s.s_gen <- min_int
  | Some data ->
      List.iteri
        (fun d (tr : Triplet.t) ->
          s.s_lo.(d) <- tr.Triplet.lo;
          s.s_hi.(d) <- tr.Triplet.hi;
          s.s_stride.(d) <- tr.Triplet.stride;
          s.s_cnt.(d) <- Triplet.count tr)
        (Box.dims seg.Symtab.seg_box);
      s.s_data <- data;
      s.s_gen <- Symtab.generation st

let refill st s arr =
  match Symtab.elem_seg st arr s.s_idx with
  | Some seg when seg.Symtab.status <> State.Unowned -> fill_site st s seg
  | _ -> s.s_gen <- min_int

let unowned_ref arr (idx : int array) =
  Evalexpr.Unowned_ref (arr ^ Box.to_string (Box.point (Array.to_list idx)))

(* Read miss: exact interpreter semantics (ownership check, then the
   no-storage diagnostic of Symtab), plus a cache refill. *)
let slow_read m s arr =
  let st = m.m_w.w_st in
  if not (Symtab.owned_element st arr s.s_idx) then raise (unowned_ref arr s.s_idx);
  let v = Symtab.get_a st arr s.s_idx in
  refill st s arr;
  v

let read_site m k arr =
  let s = m.m_sites.(k) in
  let st = m.m_w.w_st in
  if s.s_gen = Symtab.generation st then begin
    let off = site_off s 0 (Array.length s.s_idx) 0 in
    if off >= 0 then Array.unsafe_get s.s_data off else slow_read m s arr
  end
  else slow_read m s arr

(* Write-site ownership check, returning the cached storage offset or
   -1 when the element is owned but the cache could not be (re)filled
   (the store then goes through Symtab.set_a for exact diagnostics). *)
let slow_write_check m s arr =
  let st = m.m_w.w_st in
  if not (Symtab.owned_element st arr s.s_idx) then
    raise
      (m.m_w.w_misuse
         (Printf.sprintf "write to unowned element %s"
            (arr ^ Box.to_string (Box.point (Array.to_list s.s_idx)))));
  refill st s arr;
  if s.s_gen = Symtab.generation st then
    site_off s 0 (Array.length s.s_idx) 0
  else -1

let write_check m k arr =
  let s = m.m_sites.(k) in
  let st = m.m_w.w_st in
  if s.s_gen = Symtab.generation st then begin
    let off = site_off s 0 (Array.length s.s_idx) 0 in
    if off >= 0 then off else slow_write_check m s arr
  end
  else slow_write_check m s arr

let store_site m k arr x off =
  let s = m.m_sites.(k) in
  if off >= 0 then Array.unsafe_set s.s_data off x
  else Symtab.set_a m.m_w.w_st arr s.s_idx x

(* ------------------------------------------------------------------ *)
(* Expression compilers.  [ci]/[cf]/[cb] require the expression's
   static type to be SInt/SFloat/SBool respectively; [cv] compiles any
   expression to its boxed Value with exact interpreter semantics. *)

let exn_div0 = Invalid_argument "Value: integer division by zero"
let exn_mod0 = Invalid_argument "Value: modulo by zero"
let vtrue = Value.VBool true
let vfalse = Value.VBool false

let read_slot_check v (sl : slot) =
  let ex = Invalid_argument (Printf.sprintf "unbound scalar variable %s" v) in
  fun m -> if Bytes.unsafe_get m.m_bnd sl.v_id = '\000' then raise ex

let rec ci ctx e : int frag =
  match e with
  | Int n -> pure n
  | Mypid -> lift (fun m -> m.m_pid1)
  | Nprocs -> lift (fun m -> m.m_w.w_nprocs)
  | Var v ->
      let sl = slot ctx v in
      let ex =
        Invalid_argument (Printf.sprintf "unbound scalar variable %s" v)
      in
      let off = sl.v_off and id = sl.v_id in
      lift (fun m ->
          if Bytes.unsafe_get m.m_bnd id = '\000' then raise ex;
          Array.unsafe_get m.m_ints off)
  | Bin (((Add | Sub) as op), Var v, Int n) ->
      (* var ± literal, the shape of every stencil subscript: one
         closure instead of a combinator chain (same check, same
         charge, same left-to-right order) *)
      let sl = slot ctx v in
      let ex =
        Invalid_argument (Printf.sprintf "unbound scalar variable %s" v)
      in
      let off = sl.v_off and id = sl.v_id in
      let n = match op with Add -> n | _ -> -n in
      tcost ctx Costmodel.tally_int_op
        (lift (fun m ->
             if Bytes.unsafe_get m.m_bnd id = '\000' then raise ex;
             Array.unsafe_get m.m_ints off + n))
  | Bin (op, a, b) ->
      let ca = ci ctx a and cb_ = ci ctx b in
      let c =
        match op with
        | Add -> map2 ctx ( + ) ca cb_
        | Sub -> map2 ctx ( - ) ca cb_
        | Mul -> map2 ctx ( * ) ca cb_
        | Div ->
            map2 ctx (fun x y -> if y = 0 then raise exn_div0 else x / y) ca cb_
        | Mod ->
            map2 ctx
              (fun x y -> if y = 0 then raise exn_mod0 else x mod y)
              ca cb_
        | Min -> map2 ctx (fun (x : int) y -> if x <= y then x else y) ca cb_
        | Max -> map2 ctx (fun (x : int) y -> if x >= y then x else y) ca cb_
        | _ -> assert false
      in
      tcost ctx Costmodel.tally_int_op c
  | Un (Neg, a) -> tcost ctx Costmodel.tally_int_op (map (fun x -> -x) (ci ctx a))
  | Mylb (s, d) ->
      let cs = csec ctx s in
      let arr = s.arr in
      {
        cost = cs.cost;
        ab = cs.ab;
        run =
          (fun m ->
            match m.m_w.w_mylb arr (cs.run m) d with
            | Some i -> i
            | None -> max_int);
      }
  | Myub (s, d) ->
      let cs = csec ctx s in
      let arr = s.arr in
      {
        cost = cs.cost;
        ab = cs.ab;
        run =
          (fun m ->
            match m.m_w.w_myub arr (cs.run m) d with
            | Some i -> i
            | None -> min_int);
      }
  | _ -> assert false

and cf ctx e : float frag =
  match e with
  | Float x -> pure x
  | Var v ->
      let sl = slot ctx v in
      let ex =
        Invalid_argument (Printf.sprintf "unbound scalar variable %s" v)
      in
      let off = sl.v_off and id = sl.v_id in
      lift (fun m ->
          if Bytes.unsafe_get m.m_bnd id = '\000' then raise ex;
          Array.unsafe_get m.m_flts off)
  | Elem (a, idxs) -> celem ctx a idxs
  | Bin (op, a, b) ->
      let ca = cnum ctx a and cb_ = cnum ctx b in
      let c =
        match op with
        | Add -> map2 ctx ( +. ) ca cb_
        | Sub -> map2 ctx ( -. ) ca cb_
        | Mul -> map2 ctx ( *. ) ca cb_
        | Div -> map2 ctx ( /. ) ca cb_
        | Min -> map2 ctx Float.min ca cb_
        | Max -> map2 ctx Float.max ca cb_
        | _ -> assert false
      in
      tcost ctx Costmodel.tally_int_op c
  | Un (Neg, a) ->
      tcost ctx Costmodel.tally_int_op (map (fun x -> -.x) (cf ctx a))
  | _ -> assert false

(* Numeric operand of a float-typed operation: a statically-int
   subexpression is coerced exactly like Value.to_float. *)
and cnum ctx e =
  match ty ctx e with
  | SInt -> map float_of_int (ci ctx e)
  | SFloat -> cf ctx e
  | _ -> assert false

and cb ctx e : bool frag =
  match e with
  | Bool b -> pure b
  | Var v ->
      let sl = slot ctx v in
      let check = read_slot_check v sl in
      let off = sl.v_off in
      lift (fun m ->
          check m;
          Value.to_bool m.m_vals.(off))
  | Iown s -> c_query ctx s `Iown
  | Accessible s -> c_query ctx s `Accessible
  | Await s -> c_query ctx s `Await
  | Un (Not, a) -> tcost ctx Costmodel.tally_int_op (map not (c_bool ctx a))
  | Bin (And, a, b) ->
      let ca = c_bool ctx a in
      let br = charged ctx (c_bool ctx b) in
      tcost ctx Costmodel.tally_int_op
        {
          cost = ca.cost;
          ab = true;
          run = (fun m -> if ca.run m then br m else false);
        }
  | Bin (Or, a, b) ->
      let ca = c_bool ctx a in
      let br = charged ctx (c_bool ctx b) in
      tcost ctx Costmodel.tally_int_op
        {
          cost = ca.cost;
          ab = true;
          run = (fun m -> if ca.run m then true else br m);
        }
  | Bin (((Eq | Ne | Lt | Le | Gt | Ge) as op), a, b) ->
      let c =
        match (ty ctx a, ty ctx b) with
        | SInt, SInt ->
            let ca = ci ctx a and cb_ = ci ctx b in
            let f : int -> int -> bool =
              match op with
              | Eq -> ( = )
              | Ne -> ( <> )
              | Lt -> ( < )
              | Le -> ( <= )
              | Gt -> ( > )
              | Ge -> ( >= )
              | _ -> assert false
            in
            map2 ctx f ca cb_
        | (SInt | SFloat), (SInt | SFloat) ->
            (* the interpreter compares via polymorphic [compare] on
               floats, i.e. the total order of Float.compare *)
            let ca = cnum ctx a and cb_ = cnum ctx b in
            let f =
              match op with
              | Eq -> fun x y -> Float.compare x y = 0
              | Ne -> fun x y -> Float.compare x y <> 0
              | Lt -> fun x y -> Float.compare x y < 0
              | Le -> fun x y -> Float.compare x y <= 0
              | Gt -> fun x y -> Float.compare x y > 0
              | Ge -> fun x y -> Float.compare x y >= 0
              | _ -> assert false
            in
            map2 ctx f ca cb_
        | SBool, SBool ->
            let ca = cb ctx a and cb_ = cb ctx b in
            let f : bool -> bool -> bool =
              match op with
              | Eq -> ( = )
              | Ne -> ( <> )
              | Lt -> ( < )
              | Le -> ( <= )
              | Gt -> ( > )
              | Ge -> ( >= )
              | _ -> assert false
            in
            map2 ctx f ca cb_
        | _ ->
            map2 ctx
              (fun x y -> Value.to_bool (Value.binop op x y))
              (cv ctx a) (cv ctx b)
      in
      tcost ctx Costmodel.tally_int_op c
  | _ -> assert false

(* Intrinsic placement queries, with a per-site inline cache: while
   the symbol-table generation is unchanged, the same query on the
   same box scans the same descriptors — same answer, same visit
   count — so a hit replays the recorded visit charge without
   rescanning.  A miss queries the table directly and measures the
   visit delta exactly as the interpreter's charged hooks do. *)
and c_query ctx (s : section) which =
  let cs = csec ctx s in
  let arr = s.arr in
  let k = new_site ctx 0 in
  let td = ctx.cm.Costmodel.time_desc in
  let lookup m (box : Box.t) : State.t =
    let st = m.m_w.w_st in
    let site = m.m_sites.(k) in
    let g = Symtab.generation st in
    let hit =
      site.s_qgen = g
      && match site.s_qbox with Some b -> Box.equal b box | None -> false
    in
    if hit then Symtab.note_visits st site.s_qvisits
    else begin
      let v0 = Symtab.descriptor_visits st in
      let state =
        match which with
        | `Iown ->
            if Symtab.iown st arr box then State.Accessible
            else State.Unowned
        | `Accessible ->
            if Symtab.accessible st arr box then State.Accessible
            else State.Unowned
        | `Await -> Symtab.section_state st arr box
      in
      site.s_qgen <- g;
      site.s_qbox <- Some box;
      site.s_qstate <- state;
      site.s_qvisits <- Symtab.descriptor_visits st - v0
    end;
    m.m_w.w_charge (float_of_int site.s_qvisits *. td);
    site.s_qstate
  in
  match which with
  | `Await ->
      {
        cost = cs.cost;
        ab = true;
        run =
          (fun m ->
            let box = cs.run m in
            match lookup m box with
            | State.Unowned -> false
            | State.Accessible -> true
            | State.Transitional -> raise (Evalexpr.Blocked_on (arr, box)));
      }
  | `Iown | `Accessible ->
      {
        cost = cs.cost;
        ab = true;
        run = (fun m -> lookup m (cs.run m) = State.Accessible);
      }

(* Any expression in boolean position (guards, if-conditions, and/or
   operands): statically-bool goes unboxed, everything else through
   Value.to_bool for exact diagnostics. *)
and c_bool ctx e =
  match ty ctx e with
  | SBool -> cb ctx e
  | _ -> map Value.to_bool (cv ctx e)

(* Subscript/bound position: interpreter semantics are
   [Value.to_int (eval e)]. *)
and c_idx ctx e =
  match ty ctx e with SInt -> ci ctx e | _ -> map Value.to_int (cv ctx e)

and cv ctx e : Value.t frag =
  match ty ctx e with
  | SInt -> map (fun n -> Value.VInt n) (ci ctx e)
  | SFloat -> map (fun x -> Value.VFloat x) (cf ctx e)
  | SBool -> map (fun b -> if b then vtrue else vfalse) (cb ctx e)
  | _ -> cvd ctx e

(* Dynamic fallback: mirror Evalexpr.eval exactly. *)
and cvd ctx e =
  match e with
  | Var v ->
      let sl = slot ctx v in
      let check = read_slot_check v sl in
      let off = sl.v_off in
      lift (fun m ->
          check m;
          m.m_vals.(off))
  | Bin (And, a, b) ->
      let ca = c_bool ctx a in
      let br = charged ctx (cv ctx b) in
      tcost ctx Costmodel.tally_int_op
        {
          cost = ca.cost;
          ab = true;
          run = (fun m -> if ca.run m then br m else vfalse);
        }
  | Bin (Or, a, b) ->
      let ca = c_bool ctx a in
      let br = charged ctx (cv ctx b) in
      tcost ctx Costmodel.tally_int_op
        {
          cost = ca.cost;
          ab = true;
          run = (fun m -> if ca.run m then vtrue else br m);
        }
  | Bin (op, a, b) ->
      tcost ctx Costmodel.tally_int_op
        (map2 ctx (Value.binop op) (cv ctx a) (cv ctx b))
  | Un (op, a) ->
      tcost ctx Costmodel.tally_int_op (map (Value.unop op) (cv ctx a))
  | _ -> assert false (* every other constructor has a concrete type *)

(* Evaluate subscripts left-to-right into site [k]'s scratch buffer.
   When no subscript can abort (no intrinsic queries inside), the
   whole fill is one closure over an array of compiled subscripts —
   costs fold into the static head exactly as the combinator chain
   would fold them, so charges are unchanged. *)
and c_fill ctx k idxs = c_fill2 ctx k (List.map (fun e -> c_idx ctx e) idxs)

and c_fill2 ctx k (ces : int frag list) =
  if List.for_all (fun (c : int frag) -> not c.ab) ces then begin
    let cost =
      List.fold_left
        (fun acc (c : int frag) -> Costmodel.tally_add acc c.cost)
        Costmodel.tally_zero ces
    in
    let runs = Array.of_list (List.map (fun (c : int frag) -> c.run) ces) in
    {
      cost;
      ab = false;
      run =
        (fun m ->
          let s = m.m_sites.(k) in
          for d = 0 to Array.length runs - 1 do
            s.s_idx.(d) <- (Array.unsafe_get runs d) m
          done);
    }
  end
  else
    let rec fill d = function
      | [] -> pure ()
      | ce :: es ->
          let st =
            {
              cost = ce.cost;
              ab = ce.ab;
              run = (fun m -> m.m_sites.(k).s_idx.(d) <- ce.run m);
            }
          in
          seq2 ctx st (fill (d + 1) es)
    in
    fill 0 ces

(* Element read: subscripts evaluate into the site's scratch buffer
   (charging as they go), one memory charge, then the cached read.
   Rank-1/2 reads with non-abortable subscripts — every stencil
   reference — compile to a single closure with the offset arithmetic
   of [site_off] unrolled inline; the scratch buffer is only filled on
   the slow path, whose diagnostics need it. *)
and celem ctx arr idxs =
  let k = new_site ctx (List.length idxs) in
  let ces = List.map (fun e -> c_idx ctx e) idxs in
  let specialized =
    match ces with
    | [ c0 ] when not c0.ab ->
        let r0 = c0.run in
        Some
          {
            cost = c0.cost;
            ab = false;
            run =
              (fun m ->
                let i = r0 m in
                let s = m.m_sites.(k) in
                if s.s_gen = Symtab.generation m.m_w.w_st then begin
                  let k0 = i - Array.unsafe_get s.s_lo 0 in
                  let st0 = Array.unsafe_get s.s_stride 0 in
                  if k0 >= 0 && i <= Array.unsafe_get s.s_hi 0
                     && k0 mod st0 = 0
                  then Array.unsafe_get s.s_data (k0 / st0)
                  else begin
                    s.s_idx.(0) <- i;
                    slow_read m s arr
                  end
                end
                else begin
                  s.s_idx.(0) <- i;
                  slow_read m s arr
                end);
          }
    | [ c0; c1 ] when (not c0.ab) && not c1.ab ->
        let r0 = c0.run and r1 = c1.run in
        Some
          {
            cost = Costmodel.tally_add c0.cost c1.cost;
            ab = false;
            run =
              (fun m ->
                let i = r0 m in
                let j = r1 m in
                let s = m.m_sites.(k) in
                if s.s_gen = Symtab.generation m.m_w.w_st then begin
                  let k0 = i - Array.unsafe_get s.s_lo 0 in
                  let k1 = j - Array.unsafe_get s.s_lo 1 in
                  let st0 = Array.unsafe_get s.s_stride 0 in
                  let st1 = Array.unsafe_get s.s_stride 1 in
                  if
                    k0 >= 0 && k1 >= 0
                    && i <= Array.unsafe_get s.s_hi 0
                    && j <= Array.unsafe_get s.s_hi 1
                    && k0 mod st0 = 0
                    && k1 mod st1 = 0
                  then
                    Array.unsafe_get s.s_data
                      ((k0 / st0 * Array.unsafe_get s.s_cnt 1) + (k1 / st1))
                  else begin
                    s.s_idx.(0) <- i;
                    s.s_idx.(1) <- j;
                    slow_read m s arr
                  end
                end
                else begin
                  s.s_idx.(0) <- i;
                  s.s_idx.(1) <- j;
                  slow_read m s arr
                end);
          }
    | _ -> None
  in
  match specialized with
  | Some base -> { (post ctx Costmodel.tally_mem base) with ab = true }
  | None ->
      let filled = post ctx Costmodel.tally_mem (c_fill2 ctx k ces) in
      {
        cost = filled.cost;
        ab = true;
        run =
          (fun m ->
            filled.run m;
            read_site m k arr);
      }

(* Section resolution.  Per-dimension selectors evaluate left to
   right; inside a Slice the interpreter's [Triplet.make ~lo ~hi
   ~stride] evaluates its arguments right to left (OCaml argument
   order), so stride, hi, lo — replicated here so charges interleave
   identically.  Sections whose subscripts are per-processor constants
   (literals, mypid, nprocs) memoize their box per machine; the
   resolution cost is still charged on every execution. *)
and csec ctx (s : section) : Box.t frag =
  match
    match ctx.shape_of s.arr with
    | shape -> `Shape shape
    | exception e -> `Raise e
  with
  | `Raise e -> { cost = Costmodel.tally_zero; ab = true; run = (fun _ -> raise e) }
  | `Shape shape ->
      if List.length s.sel <> List.length shape then begin
        let msg =
          Printf.sprintf "section %s: rank mismatch"
            (Xdp.Pp.section_to_string s)
        in
        {
          cost = Costmodel.tally_zero;
          ab = true;
          run = (fun _ -> invalid_arg msg);
        }
      end
      else begin
        let dims =
          List.map2
            (fun sel extent ->
              match sel with
              | All -> pure (Triplet.range 1 extent)
              | At e -> map Triplet.point (c_idx ctx e)
              | Slice (lo, hi, st) ->
                  let cst = c_idx ctx st in
                  let chi = c_idx ctx hi in
                  let clo = c_idx ctx lo in
                  let p = map2 ctx (fun st hi -> (st, hi)) cst chi in
                  map2 ctx
                    (fun (st, hi) lo -> Triplet.make ~lo ~hi ~stride:st)
                    p clo)
            s.sel shape
        in
        let boxed = map Box.make (seq_list ctx dims) in
        let rec static_e = function
          | Int _ | Float _ | Bool _ | Mypid | Nprocs -> true
          | Bin (_, a, b) -> static_e a && static_e b
          | Un (_, a) -> static_e a
          | Var _ | Elem _ | Mylb _ | Myub _ | Iown _ | Accessible _
          | Await _ ->
              false
        in
        let static_sel =
          List.for_all
            (function
              | All -> true
              | At e -> static_e e
              | Slice (a, b, c) -> static_e a && static_e b && static_e c)
            s.sel
        in
        if static_sel && not boxed.ab then begin
          let k = new_site ctx 0 in
          {
            boxed with
            run =
              (fun m ->
                let site = m.m_sites.(k) in
                match site.s_box with
                | Some b -> b
                | None ->
                    let b = boxed.run m in
                    site.s_box <- Some b;
                    b);
          }
        end
        else boxed
      end

(* ------------------------------------------------------------------ *)
(* Statement compilation. *)

(* Float-valued right-hand side of an element store: interpreter does
   [Value.to_float (eval e)]. *)
let c_float_rhs ctx e =
  match ty ctx e with
  | SFloat -> cf ctx e
  | SInt -> map float_of_int (ci ctx e)
  | _ -> map Value.to_float (cv ctx e)

let unowned_read_misuse m n =
  raise
    (m.m_w.w_misuse
       (Printf.sprintf "read of unowned %s outside a compute rule" n))

(* ------------------------------------------------------------------ *)
(* Fusion region analysis (DESIGN.md §4d).  A statement may execute
   inside a superinstruction — without ever yielding its scheduler
   turn — iff it can never raise [Blocked_on]: transfer statements and
   [await] expressions are the only blocking points, so any statement
   that is neither is fusable.  [Unowned_ref] and misuse aborts are
   fatal diagnostics, not yields, and may still end a fused run
   mid-flight. *)

let rec no_await_e = function
  | Int _ | Float _ | Bool _ | Mypid | Nprocs | Var _ -> true
  | Await _ -> false
  | Elem (_, es) -> List.for_all no_await_e es
  | Bin (_, a, b) -> no_await_e a && no_await_e b
  | Un (_, a) -> no_await_e a
  | Mylb (s, _) | Myub (s, _) | Iown s | Accessible s -> no_await_sec s

and no_await_sec s =
  List.for_all
    (function
      | All -> true
      | At e -> no_await_e e
      | Slice (a, b, c) -> no_await_e a && no_await_e b && no_await_e c)
    s.sel

(* A fixed-cost expression charges the same static tally on every
   evaluation: no short-circuit operators (data-dependent charges), no
   descriptor intrinsics (run-time descriptor-visit charges).  Only
   such expressions may compile quietly under a batched loop charge. *)
let rec fixed_cost_e = function
  | Int _ | Float _ | Bool _ | Mypid | Nprocs | Var _ -> true
  | Bin ((And | Or), _, _) -> false
  | Iown _ | Accessible _ | Await _ -> false
  | Elem (_, es) -> List.for_all fixed_cost_e es
  | Bin (_, a, b) -> fixed_cost_e a && fixed_cost_e b
  | Un (_, a) -> fixed_cost_e a
  | Mylb (s, _) | Myub (s, _) ->
      List.for_all
        (function
          | All -> true
          | At e -> fixed_cost_e e
          | Slice (a, b, c) ->
              fixed_cost_e a && fixed_cost_e b && fixed_cost_e c)
        s.sel

(* Element-store core, shared by the turn-stepped statement, the fused
   run, and (compiled quietly) the batched loop body. *)
let compile_elem_assign ctx a idxs e =
  let k = new_site ctx (List.length idxs) in
  let fillr = charged ctx (c_fill ctx k idxs) in
  let rhsr = charged ctx (post ctx Costmodel.tally_mem (c_float_rhs ctx e)) in
  fun m ->
    fillr m;
    let off = write_check m k a in
    let x =
      try rhsr m with Evalexpr.Unowned_ref n -> unowned_read_misuse m n
    in
    store_site m k a x off

(* Compile an element store with all charges diverted into a tally:
   the runner charges nothing, the returned tally is its exact
   per-execution cost (valid because the caller checked
   [fixed_cost_e] on every subexpression). *)
let quiet_elem_assign ctx a idxs e =
  assert (not ctx.quiet);
  ctx.quiet <- true;
  ctx.qtally <- Costmodel.tally_zero;
  let run = compile_elem_assign ctx a idxs e in
  let t = ctx.qtally in
  ctx.quiet <- false;
  ctx.qtally <- Costmodel.tally_zero;
  (run, t)

let kbuf m n =
  if Array.length m.m_kbuf < n then m.m_kbuf <- Array.make n 0.0;
  m.m_kbuf

let ktmp m n =
  if Array.length m.m_ktmp < n then m.m_ktmp <- Array.make n 0.0;
  m.m_ktmp

(* Revalidate a site's kernel plan against [box]: succeeds when [box]
   is the cached section translated along at most one dimension and
   every piece, equally shifted, still lands inside its original
   segment — which must itself still be owned with the same chunk.
   Ownership moves at segment granularity and retired descriptors are
   never resurrected, so these per-descriptor checks subsume a
   generation check: a valid plan is exactly the decomposition a fresh
   scan would produce (pieces of pairwise-disjoint live segments whose
   counts sum to the section's, i.e. an exact cover).  On success each
   piece's [kp_shift] holds its chunk-offset delta. *)
let replant site (box : Box.t) =
  match site.s_kbox with
  | None -> false
  | Some cached ->
      let rank = Box.rank cached in
      Box.rank box = rank
      && begin
           let dd = ref 0 and delta = ref 0 and ok = ref true in
           for d = 1 to rank do
             let tc = Box.dim cached d and tb = Box.dim box d in
             if not (Triplet.equal tc tb) then
               if
                 !dd = 0
                 && tb.Triplet.stride = tc.Triplet.stride
                 && tb.Triplet.lo - tc.Triplet.lo = tb.Triplet.hi - tc.Triplet.hi
               then begin
                 dd := d;
                 delta := tb.Triplet.lo - tc.Triplet.lo
               end
               else ok := false
           done;
           !ok
           && begin
                let d = !dd and dl = !delta in
                let pieces = site.s_kpieces in
                let np = Array.length pieces in
                let rec go i =
                  if i >= np then true
                  else
                    let p = pieces.(i) in
                    let sg = p.kp_seg in
                    sg.Symtab.status <> State.Unowned
                    && (match sg.Symtab.data with
                       | Some c -> c == p.kp_data
                       | None -> false)
                    && (if d = 0 then begin
                          p.kp_shift <- 0;
                          true
                        end
                        else
                          (* piece strides divide the segment stride's
                             multiples by construction, so membership of
                             the shifted low end plus the high bound
                             keeps the whole piece inside the segment *)
                          let pt = Box.dim p.kp_piece d
                          and st = Box.dim sg.Symtab.seg_box d in
                          Triplet.mem (pt.Triplet.lo + dl) st
                          && pt.Triplet.hi + dl <= st.Triplet.hi
                          && begin
                               p.kp_shift <-
                                 dl / st.Triplet.stride * p.kp_w.(d - 1);
                               true
                             end)
                    && go (i + 1)
                in
                go 0
              end
         end

(* Build a fresh plan for [box] from the table's piece decomposition
   (charges one covering query, like the scan it memoizes). *)
let plant st site arr (box : Box.t) =
  let pieces = ref [] and total = ref 0 in
  Symtab.iter_pieces st arr box (fun data piece ~seg ~seg_view ~box_view ->
      let runs = ref [] in
      Box.iter_runs2 piece ~a:seg_view ~b:box_view (fun src dst len ->
          runs := (src, dst, len) :: !runs);
      total := !total + Box.count piece;
      pieces :=
        {
          kp_seg = seg;
          kp_data = data;
          kp_piece = piece;
          kp_w = Box.weights seg.Symtab.seg_box;
          kp_runs = Array.of_list (List.rev !runs);
          kp_shift = 0;
        }
        :: !pieces);
  site.s_kbox <- Some box;
  site.s_kpieces <- Array.of_list (List.rev !pieces);
  site.s_ktotal <- !total

let plan_read site buf =
  Array.iter
    (fun p ->
      let sh = p.kp_shift in
      Array.iter
        (fun (src, dst, len) ->
          if len = 1 then buf.(dst) <- p.kp_data.(src + sh)
          else Array.blit p.kp_data (src + sh) buf dst len)
        p.kp_runs)
    site.s_kpieces

let plan_write site buf =
  Array.iter
    (fun p ->
      let sh = p.kp_shift in
      Array.iter
        (fun (src, dst, len) ->
          if len = 1 then p.kp_data.(src + sh) <- buf.(dst)
          else Array.blit buf dst p.kp_data (src + sh) len)
        p.kp_runs)
    site.s_kpieces

(* A plan that is one contiguous chunk run can transform in place,
   skipping both copies (the transform itself is identical float ops
   on identical values, so results stay bit-for-bit the same). *)
let plan_solid site n =
  match site.s_kpieces with
  | [| p |] -> (
      match p.kp_runs with
      | [| (src, 0, len) |] when len = n -> Some (p.kp_data, src + p.kp_shift)
      | _ -> None)
  | _ -> None

(* Why a statement has no fused form — the per-statement observability
   the BENCH_exec fusion tables report, so a 1.0x row (e.g. the
   misaligned vecadd copy loop) names its blocker instead of being
   silent.  The classification mirrors [cstmt_k]'s fusability
   conditions exactly: [None] iff the statement gets an [sc_fast].
   Compound statements propagate the first blocked inner statement's
   reason, so a guard whose body receives reports "transfer", not a
   generic "blocked body". *)
let rec block_reason kernels (s : stmt) : string option =
  let awaits es = not (List.for_all no_await_e es) in
  match s with
  | Send_value _ | Send_owner _ | Send_owner_value _ | Recv_value _
  | Recv_owner _ | Recv_owner_value _ ->
      Some "transfer"
  | Assign (Lvar _, e) -> if awaits [ e ] then Some "await-in-expr" else None
  | Assign (Lelem (_, idxs), e) ->
      if awaits (e :: idxs) then Some "await-in-expr" else None
  | Guard (g, body) ->
      if awaits [ g ] then Some "await-in-guard"
      else block_reason_block kernels body
  | For { lo; hi; step; body; _ } ->
      if awaits [ lo; hi; step ] then Some "await-in-bounds"
      else block_reason_block kernels body
  | If (c, a, b) -> (
      if awaits [ c ] then Some "await-in-cond"
      else
        match block_reason_block kernels a with
        | Some r -> Some r
        | None -> block_reason_block kernels b)
  | Apply { fn; args } -> (
      match Xdp.Kernels.find kernels fn with
      | None -> Some "unknown-kernel"
      | Some _ ->
          if not (List.for_all no_await_sec args) then Some "await-in-args"
          else None)

and block_reason_block kernels stmts =
  List.find_map (block_reason kernels) stmts

(* A compiled statement: the turn-stepped form plus, when fusable, the
   fused form (returning statements executed).  [sc_solo] marks
   statements worth fusing even alone: compound statements and inlined
   kernels collapse many scheduler turns into one. *)
type sc = {
  sc_code : code;
  sc_fast : (machine -> int) option;
  sc_solo : bool;
}

type blk = { b_units : units; b_fast : (machine -> int) option }

let compose_fast (fasts : (machine -> int) array) =
  match Array.length fasts with
  | 0 -> fun _ -> 0
  | 1 -> fasts.(0)
  | len ->
      fun m ->
        let k = ref 0 in
        for i = 0 to len - 1 do
          k := !k + (Array.unsafe_get fasts i) m
        done;
        !k

let rec cstmt ctx (s : stmt) : sc =
  let sc = cstmt_k ctx s in
  ctx.fs_total <- ctx.fs_total + 1;
  if sc.sc_fast <> None then ctx.fs_fusable <- ctx.fs_fusable + 1
  else if ctx.fuse then
    (* [block_reason] re-derives exactly the fusability analysis, so a
       fusable statement can never reach the [None] fallback; "other"
       would mean the two drifted apart (the blocker-sum invariant in
       the tests would catch it). *)
    record_blocker ctx
      (Option.value ~default:"other" (block_reason ctx.kernels s));
  sc

and cstmt_k ctx (s : stmt) : sc =
  let stmt code = { sc_code = code; sc_fast = None; sc_solo = false } in
  match s with
  | Assign (Lvar v, e) ->
      let sl = slot ctx v in
      let off = sl.v_off and id = sl.v_id in
      let run =
        match sl.v_kind with
        | KInt ->
            let r = charged ctx (post ctx Costmodel.tally_mem (ci ctx e)) in
            fun m ->
              let x =
                try r m with Evalexpr.Unowned_ref n -> unowned_read_misuse m n
              in
              Array.unsafe_set m.m_ints off x;
              Bytes.unsafe_set m.m_bnd id '\001'
        | KFloat ->
            let r = charged ctx (post ctx Costmodel.tally_mem (cf ctx e)) in
            fun m ->
              let x =
                try r m with Evalexpr.Unowned_ref n -> unowned_read_misuse m n
              in
              Array.unsafe_set m.m_flts off x;
              Bytes.unsafe_set m.m_bnd id '\001'
        | KVal ->
            let r = charged ctx (post ctx Costmodel.tally_mem (cv ctx e)) in
            fun m ->
              let x =
                try r m with Evalexpr.Unowned_ref n -> unowned_read_misuse m n
              in
              m.m_vals.(off) <- x;
              Bytes.unsafe_set m.m_bnd id '\001'
      in
      {
        sc_code =
          (fun m ->
            run m;
            A_next);
        sc_fast =
          (if ctx.fuse && no_await_e e then
             Some
               (fun m ->
                 run m;
                 1)
           else None);
        sc_solo = false;
      }
  | Assign (Lelem (a, idxs), e) ->
      let run = compile_elem_assign ctx a idxs e in
      {
        sc_code =
          (fun m ->
            run m;
            A_next);
        sc_fast =
          (if ctx.fuse && List.for_all no_await_e (e :: idxs) then
             Some
               (fun m ->
                 run m;
                 1)
           else None);
        sc_solo = false;
      }
  | Guard (g, body) ->
      let cg = c_bool ctx g in
      let head =
        Costmodel.tally_cost ctx.cm
          (Costmodel.tally_add Costmodel.tally_guard cg.cost)
      in
      let bodyb = cblock ctx body in
      let test m =
        m.m_w.w_guard_eval ();
        if head <> 0.0 then m.m_w.w_charge head;
        let b = try cg.run m with Evalexpr.Unowned_ref _ -> false in
        if b then m.m_w.w_guard_hit ();
        b
      in
      {
        sc_code = (fun m -> if test m then A_block bodyb.b_units else A_next);
        sc_fast =
          (match bodyb.b_fast with
          | Some bf when ctx.fuse && no_await_e g ->
              Some (fun m -> if test m then 1 + bf m else 1)
          | _ -> None);
        sc_solo = true;
      }
  | For { var; lo; hi; step; body; _ } ->
      let cl = c_idx ctx lo and ch = c_idx ctx hi and cs = c_idx ctx step in
      let trip = map2 ctx (fun a b -> (a, b)) cl ch in
      let trip = map2 ctx (fun (a, b) c -> (a, b, c)) trip cs in
      let tripr = charged ctx trip in
      let sl = slot ctx var in
      let off = sl.v_off and id = sl.v_id in
      let set =
        match sl.v_kind with
        | KInt ->
            fun m n ->
              Array.unsafe_set m.m_ints off n;
              Bytes.unsafe_set m.m_bnd id '\001'
        | KVal ->
            fun m n ->
              m.m_vals.(off) <- Value.VInt n;
              Bytes.unsafe_set m.m_bnd id '\001'
        | KFloat -> assert false (* loop vars are never float-typed *)
      in
      let int_op = ctx.cm.Costmodel.time_int_op in
      (* The batched specialization compiles the body itself (quietly);
         only the other cases need the generic block. *)
      let batched =
        if not (ctx.fuse && List.for_all no_await_e [ lo; hi; step ]) then
          None
        else
          match body with
          | [ Assign (Lelem (a, idxs), e) ]
            when List.for_all fixed_cost_e (e :: idxs) ->
              let qrun, qt = quiet_elem_assign ctx a idxs e in
              let iter = int_op +. Costmodel.tally_cost ctx.cm qt in
              ctx.fs_loops <- ctx.fs_loops + 1;
              ctx.fs_batched <- ctx.fs_batched + 1;
              Some
                (fun m ->
                  let lo, hi, step = tripr m in
                  if step <= 0 then
                    raise (m.m_w.w_misuse "non-positive loop step");
                  if lo > hi then begin
                    m.m_w.w_charge int_op;
                    1
                  end
                  else begin
                    let n = ((hi - lo) / step) + 1 in
                    m.m_w.w_charge (int_op +. (float_of_int n *. iter));
                    let cur = ref lo in
                    while !cur <= hi do
                      set m !cur;
                      qrun m;
                      cur := !cur + step
                    done;
                    1 + n
                  end)
          | _ -> None
      in
      let bodyb = cblock ctx body in
      let code m =
        let lo, hi, step = tripr m in
        if step <= 0 then raise (m.m_w.w_misuse "non-positive loop step");
        m.m_w.w_charge int_op;
        if lo <= hi then
          A_loop
            {
              l_lo = lo;
              l_hi = hi;
              l_step = step;
              l_set = set;
              l_body = bodyb.b_units;
            }
        else A_next
      in
      let fast =
        match batched with
        | Some _ -> batched
        | None -> (
            match bodyb.b_fast with
            | Some bf when ctx.fuse && List.for_all no_await_e [ lo; hi; step ]
              ->
                ctx.fs_loops <- ctx.fs_loops + 1;
                Some
                  (fun m ->
                    let lo, hi, step = tripr m in
                    if step <= 0 then
                      raise (m.m_w.w_misuse "non-positive loop step");
                    m.m_w.w_charge int_op;
                    let n = ref 1 in
                    let cur = ref lo in
                    while !cur <= hi do
                      set m !cur;
                      cur := !cur + step;
                      m.m_w.w_charge int_op;
                      n := !n + bf m
                    done;
                    !n)
            | _ -> None)
      in
      { sc_code = code; sc_fast = fast; sc_solo = true }
  | If (c, a, b) ->
      let cc = charged ctx (c_bool ctx c) in
      let run_cond m =
        try cc m
        with Evalexpr.Unowned_ref n ->
          raise
            (m.m_w.w_misuse
               (Printf.sprintf "read of unowned %s in if-condition" n))
      in
      let ca = cblock ctx a and cbk = cblock ctx b in
      {
        sc_code =
          (fun m -> A_block (if run_cond m then ca.b_units else cbk.b_units));
        sc_fast =
          (match (ca.b_fast, cbk.b_fast) with
          | Some fa, Some fb when ctx.fuse && no_await_e c ->
              Some (fun m -> if run_cond m then 1 + fa m else 1 + fb m)
          | _ -> None);
        sc_solo = true;
      }
  | Send_value (s, dest) -> (
      let r = charged ctx (csec ctx s) in
      let arr = s.arr in
      match dest with
      | Unspecified ->
          let none_thunk () = None in
          stmt (fun m ->
              let box = r m in
              m.m_w.w_send_value ~arr ~box ~dests:none_thunk;
              A_next)
      | Directed es ->
          let cds = List.map (fun e -> charged ctx (c_idx ctx e)) es in
          stmt (fun m ->
              let box = r m in
              m.m_w.w_send_value ~arr ~box
                ~dests:(fun () ->
                  Some
                    (List.map
                       (fun dr ->
                         let pid1 = dr m in
                         if pid1 < 1 || pid1 > m.m_w.w_nprocs then
                           raise
                             (m.m_w.w_misuse
                                (Printf.sprintf
                                   "send directed to invalid processor %d"
                                   pid1));
                         pid1 - 1)
                       cds));
              A_next))
  | Send_owner s ->
      let r = charged ctx (csec ctx s) in
      let arr = s.arr in
      stmt (fun m ->
          m.m_w.w_send_owner ~with_value:false ~arr ~box:(r m);
          A_next)
  | Send_owner_value s ->
      let r = charged ctx (csec ctx s) in
      let arr = s.arr in
      stmt (fun m ->
          m.m_w.w_send_owner ~with_value:true ~arr ~box:(r m);
          A_next)
  | Recv_owner s ->
      let r = charged ctx (csec ctx s) in
      let arr = s.arr in
      stmt (fun m ->
          m.m_w.w_recv_owner ~with_value:false ~arr ~box:(r m);
          A_next)
  | Recv_owner_value s ->
      let r = charged ctx (csec ctx s) in
      let arr = s.arr in
      stmt (fun m ->
          m.m_w.w_recv_owner ~with_value:true ~arr ~box:(r m);
          A_next)
  | Recv_value { into; from } ->
      let cinto = csec ctx into and cfrom = csec ctx from in
      let both = map2 ctx (fun a b -> (a, b)) cinto cfrom in
      let r = charged ctx both in
      let ia = into.arr and fa = from.arr in
      stmt (fun m ->
          let ib, fb = r m in
          m.m_w.w_recv_value ~into:(ia, ib) ~from:(fa, fb);
          A_next)
  | Apply { fn; args } -> (
      match Xdp.Kernels.find ctx.kernels fn with
      | None ->
          stmt (fun m ->
              raise (m.m_w.w_misuse (Printf.sprintf "unknown kernel %s" fn)))
      | Some k ->
          let names = List.map (fun (s : section) -> s.arr) args in
          let r = charged ctx (seq_list ctx (List.map (csec ctx) args)) in
          let run m =
            let boxes = r m in
            m.m_w.w_apply ~fn k (List.combine names boxes)
          in
          let code m =
            run m;
            A_next
          in
          if not (ctx.fuse && List.for_all no_await_sec args) then stmt code
          else
            let inlined =
              match args with
              | [ s ] when k == Xdp.Kernels.fft1d ->
                  (* inline the Kernels.dht call path: resolve, check
                     ownership, transform in place over reused machine
                     buffers, charge the identical flop/mem cost —
                     replicating Exec's apply_core event for event. *)
                  let rs = charged ctx (csec ctx s) in
                  let arr = s.arr in
                  let flop = ctx.cm.Costmodel.time_flop
                  and mem = ctx.cm.Costmodel.time_mem in
                  ctx.fs_kernels <- ctx.fs_kernels + 1;
                  let ks = new_site ctx 0 in
                  (* Event-for-event replica of Exec's apply_core:
                     ownership query, pack (one covering scan), dht,
                     unpack (one covering scan), then the closed-form
                     flop/mem charge.  A valid marshalling plan stands
                     in for all three scans; their descriptor visits
                     are replayed at the same points so the charge
                     stream is unchanged even if the kernel raises
                     between pack and unpack. *)
                  Some
                    (fun m ->
                      let box = rs m in
                      let st = m.m_w.w_st in
                      let site = m.m_sites.(ks) in
                      let n = Box.count box in
                      let live = Symtab.live_count st arr in
                      if n > 0 && site.s_ktotal = n && replant site box then begin
                        Symtab.note_visits st (2 * live);
                        let tmp = ktmp m n in
                        (match plan_solid site n with
                        | Some (data, off) ->
                            Xdp.Kernels.dht_sub ~buf:data ~tmp ~off ~stride:1
                              ~n;
                            Symtab.note_visits st live
                        | None ->
                            let buf = kbuf m n in
                            plan_read site buf;
                            Xdp.Kernels.dht_sub ~buf ~tmp ~off:0 ~stride:1 ~n;
                            Symtab.note_visits st live;
                            plan_write site buf)
                      end
                      else begin
                        if not (Symtab.iown st arr box) then
                          raise
                            (m.m_w.w_misuse
                               (Printf.sprintf
                                  "kernel %s applied to unowned section %s" fn
                                  (arr ^ Box.to_string box)));
                        plant st site arr box;
                        let buf = kbuf m n and tmp = ktmp m n in
                        (* a partial cover reads as zeros: transitional
                           segments without storage contribute nothing,
                           exactly like the fresh buffer the reference
                           engine allocates *)
                        if site.s_ktotal < n then Array.fill buf 0 n 0.0;
                        plan_read site buf;
                        Xdp.Kernels.dht_sub ~buf ~tmp ~off:0 ~stride:1 ~n;
                        Symtab.note_visits st live;
                        plan_write site buf
                      end;
                      let flops =
                        5.0 *. float_of_int n *. Xdp.Kernels.log2f n
                      in
                      m.m_w.w_charge
                        ((flops *. flop)
                        +. (2.0 *. float_of_int n *. mem));
                      1)
              | _ -> None
            in
            {
              sc_code = code;
              sc_fast =
                (match inlined with
                | Some _ -> inlined
                | None ->
                    Some
                      (fun m ->
                        run m;
                        1));
              sc_solo = inlined <> None;
            })

(* Group each block's maximal runs of fusable statements into
   superinstructions; a singleton run is only worth the fused unit
   when the statement collapses turns by itself. *)
and cblock ctx stmts : blk =
  let scs = List.map (cstmt ctx) stmts in
  let b_fast =
    if ctx.fuse && List.for_all (fun sc -> sc.sc_fast <> None) scs then
      Some
        (compose_fast
           (Array.of_list (List.map (fun sc -> Option.get sc.sc_fast) scs)))
    else None
  in
  let units = ref [] in
  let flush = function
    | [] -> ()
    | [ sc ] when not sc.sc_solo -> units := U_stmt sc.sc_code :: !units
    | rev_run ->
        let run = List.rev rev_run in
        let fasts =
          Array.of_list (List.map (fun sc -> Option.get sc.sc_fast) run)
        in
        let slow =
          Array.of_list (List.map (fun sc -> U_stmt sc.sc_code) run)
        in
        let len = Array.length fasts in
        record_run ctx len;
        units :=
          U_fuse { fu_fast = compose_fast fasts; fu_slow = slow; fu_len = len }
          :: !units
  in
  let pending = ref [] in
  List.iter
    (fun sc ->
      match sc.sc_fast with
      | Some _ -> pending := sc :: !pending
      | None ->
          flush !pending;
          pending := [];
          units := U_stmt sc.sc_code :: !units)
    scs;
  flush !pending;
  { b_units = Array.of_list (List.rev !units); b_fast }

(* ------------------------------------------------------------------ *)

type fusion_stats = {
  fs_statements : int;
  fs_fusable : int;
  fs_fused_units : int;
  fs_run_hist : (int * int) list;
  fs_spec_loops : int;
  fs_batched_loops : int;
  fs_inlined_kernels : int;
  fs_blockers : (string * int) list;
}

type cprog = {
  c_body : units;
  c_nints : int;
  c_nflts : int;
  c_nvals : int;
  c_nvars : int;
  c_site_ranks : int array;
  c_seed : (slot * Value.t) list;
  c_fstats : fusion_stats;
}

let body cp = cp.c_body
let fusion_stats cp = cp.c_fstats

let fusion_digest cp =
  let s = cp.c_fstats in
  let b = Buffer.create 128 in
  Printf.bprintf b
    "stmts=%d fusable=%d units=%d loops=%d batched=%d kernels=%d hist="
    s.fs_statements s.fs_fusable s.fs_fused_units s.fs_spec_loops
    s.fs_batched_loops s.fs_inlined_kernels;
  List.iter (fun (l, n) -> Printf.bprintf b "%d:%d," l n) s.fs_run_hist;
  Printf.bprintf b " blockers=";
  List.iter (fun (r, n) -> Printf.bprintf b "%s:%d," r n) s.fs_blockers;
  Digest.to_hex (Digest.string (Buffer.contents b))

let fuse_default =
  match Sys.getenv_opt "XDP_NO_FUSE" with
  | None | Some "" | Some "0" -> true
  | Some _ -> false

let compile ?(fuse = fuse_default) ~cost ~kernels ~scalars (p : program) =
  let vars = collect_vars p scalars in
  let tys = infer_types p scalars vars in
  let slots = Hashtbl.create 32 in
  let ni = ref 0 and nf = ref 0 and nv = ref 0 in
  List.iteri
    (fun id v ->
      let kind, off =
        match Hashtbl.find tys v with
        | SInt ->
            incr ni;
            (KInt, !ni - 1)
        | SFloat ->
            incr nf;
            (KFloat, !nf - 1)
        | SBool | SDyn ->
            incr nv;
            (KVal, !nv - 1)
        | SBot -> assert false
      in
      Hashtbl.add slots v { v_kind = kind; v_off = off; v_id = id })
    vars;
  let ctx =
    {
      cm = cost;
      kernels;
      tys;
      slots;
      shape_of =
        (fun name -> Xdp_dist.Layout.shape (decl_of p name).layout);
      nsites = 0;
      site_ranks = [];
      fuse;
      quiet = false;
      qtally = Costmodel.tally_zero;
      fs_total = 0;
      fs_fusable = 0;
      fs_units = 0;
      fs_run_hist = [];
      fs_loops = 0;
      fs_batched = 0;
      fs_kernels = 0;
      fs_blockers = [];
    }
  in
  let body = (cblock ctx p.body).b_units in
  {
    c_body = body;
    c_nints = !ni;
    c_nflts = !nf;
    c_nvals = !nv;
    c_nvars = List.length vars;
    c_site_ranks = Array.of_list (List.rev ctx.site_ranks);
    c_seed =
      List.map (fun (v, x) -> (Hashtbl.find slots v, x)) scalars;
    c_fstats =
      {
        fs_statements = ctx.fs_total;
        fs_fusable = ctx.fs_fusable;
        fs_fused_units = ctx.fs_units;
        fs_run_hist = List.sort compare ctx.fs_run_hist;
        fs_spec_loops = ctx.fs_loops;
        fs_batched_loops = ctx.fs_batched;
        fs_inlined_kernels = ctx.fs_kernels;
        fs_blockers = List.sort compare ctx.fs_blockers;
      };
  }

let machine cp w =
  let m =
    {
      m_pid1 = w.w_pid1;
      m_ints = Array.make cp.c_nints 0;
      m_flts = Array.make cp.c_nflts 0.0;
      m_vals = Array.make cp.c_nvals vfalse;
      m_bnd = Bytes.make cp.c_nvars '\000';
      m_sites = Array.map fresh_site cp.c_site_ranks;
      m_w = w;
      m_kbuf = [||];
      m_ktmp = [||];
    }
  in
  List.iter
    (fun ((sl : slot), x) ->
      (match sl.v_kind with
      | KInt -> m.m_ints.(sl.v_off) <- Value.to_int x
      | KFloat -> m.m_flts.(sl.v_off) <- Value.to_float x
      | KVal -> m.m_vals.(sl.v_off) <- x);
      Bytes.set m.m_bnd sl.v_id '\001')
    cp.c_seed;
  m
