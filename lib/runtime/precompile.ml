open Xdp.Ir
open Xdp_util
module Symtab = Xdp_symtab.Symtab
module State = Xdp_symtab.State
module Costmodel = Xdp_sim.Costmodel

type world = {
  w_pid1 : int;
  w_nprocs : int;
  w_st : Symtab.t;
  w_charge : float -> unit;
  w_iown : string -> Box.t -> bool;
  w_accessible : string -> Box.t -> bool;
  w_await : string -> Box.t -> bool;
  w_mylb : string -> Box.t -> int -> int option;
  w_myub : string -> Box.t -> int -> int option;
  w_guard_eval : unit -> unit;
  w_guard_hit : unit -> unit;
  w_misuse : string -> exn;
  w_send_value :
    arr:string -> box:Box.t -> dests:(unit -> int list option) -> unit;
  w_send_owner : with_value:bool -> arr:string -> box:Box.t -> unit;
  w_recv_owner : with_value:bool -> arr:string -> box:Box.t -> unit;
  w_recv_value : into:string * Box.t -> from:string * Box.t -> unit;
  w_apply : fn:string -> Xdp.Kernels.t -> (string * Box.t) list -> unit;
}

(* A site is the per-machine mutable state of one static program
   point: the index scratch buffer of an element access plus an
   inline cache of the backing segment (geometry and storage chunk,
   valid while the symbol table generation is unchanged), or the
   memoized box of a statically-resolvable section. *)
type site = {
  s_idx : int array;
  mutable s_gen : int; (* Symtab.generation at fill; min_int = cold *)
  mutable s_data : float array;
  mutable s_lo : int array;
  mutable s_hi : int array;
  mutable s_stride : int array;
  mutable s_cnt : int array;
  mutable s_box : Box.t option; (* memoized constant section *)
}

type machine = {
  m_pid1 : int;
  m_ints : int array;
  m_flts : float array;
  m_vals : Value.t array;
  m_bnd : Bytes.t; (* per-variable bound flags *)
  m_sites : site array;
  m_w : world;
}

type act = A_next | A_block of code array | A_loop of loop
and code = machine -> act

and loop = {
  l_lo : int;
  l_hi : int;
  l_step : int;
  l_set : machine -> int -> unit;
  l_body : code array;
}

(* ------------------------------------------------------------------ *)
(* Static scalar types.  A variable gets an unboxed slot only when
   every binding (scalar preload, loop header, assignment) agrees on
   one concrete type; [SInt] and [SFloat] do NOT join to [SFloat]
   because integer and float division/modulo differ, so mixed
   variables stay boxed with exact Value semantics. *)

type sty = SBot | SInt | SFloat | SBool | SDyn

let join a b =
  if a = b then a
  else match (a, b) with SBot, x | x, SBot -> x | _ -> SDyn

let var_ty tys miss v =
  match Hashtbl.find_opt tys v with
  | Some SBot | None -> miss
  | Some t -> t

let rec ty_of tys miss e =
  match e with
  | Int _ | Mypid | Nprocs | Mylb _ | Myub _ -> SInt
  | Float _ | Elem _ -> SFloat
  | Bool _ | Iown _ | Accessible _ | Await _ -> SBool
  | Var v -> var_ty tys miss v
  | Un (Neg, a) -> (
      match ty_of tys miss a with
      | (SInt | SFloat | SBot) as t -> t
      | _ -> SDyn)
  | Un (Not, _) -> SBool
  | Bin (op, a, b) -> (
      let ta = ty_of tys miss a and tb = ty_of tys miss b in
      match op with
      | Eq | Ne | Lt | Le | Gt | Ge -> SBool
      | And | Or -> (
          (* the result is [b]'s value (or a boolean constant), so
             only [b]'s type matters *)
          match tb with SBool -> SBool | SBot -> SBot | _ -> SDyn)
      | Mod -> (
          match (ta, tb) with
          | SBot, _ | _, SBot -> SBot
          | SInt, SInt -> SInt
          | _ -> SDyn)
      | Add | Sub | Mul | Div | Min | Max -> (
          match (ta, tb) with
          | SBot, _ | _, SBot -> SBot
          | SInt, SInt -> SInt
          | (SInt | SFloat), (SInt | SFloat) -> SFloat
          | _ -> SDyn))

(* All scalar names appearing in the program or the preload, in first
   occurrence order (stable slot numbering). *)
let collect_vars (p : program) scalars =
  let seen = Hashtbl.create 32 in
  let order = ref [] in
  let note v =
    if not (Hashtbl.mem seen v) then begin
      Hashtbl.add seen v ();
      order := v :: !order
    end
  in
  List.iter (fun (v, _) -> note v) scalars;
  let rec ex = function
    | Int _ | Float _ | Bool _ | Mypid | Nprocs -> ()
    | Var v -> note v
    | Elem (_, es) -> List.iter ex es
    | Bin (_, a, b) ->
        ex a;
        ex b
    | Un (_, a) -> ex a
    | Mylb (s, _) | Myub (s, _) | Iown s | Accessible s | Await s -> sec s
  and sec s =
    List.iter
      (function
        | All -> ()
        | At e -> ex e
        | Slice (a, b, c) ->
            ex a;
            ex b;
            ex c)
      s.sel
  and st = function
    | Assign (Lvar v, e) ->
        note v;
        ex e
    | Assign (Lelem (_, idxs), e) ->
        List.iter ex idxs;
        ex e
    | Guard (g, body) ->
        ex g;
        List.iter st body
    | For { var; lo; hi; step; body; _ } ->
        note var;
        ex lo;
        ex hi;
        ex step;
        List.iter st body
    | If (c, a, b) ->
        ex c;
        List.iter st a;
        List.iter st b
    | Send_value (s, d) -> (
        sec s;
        match d with Unspecified -> () | Directed es -> List.iter ex es)
    | Send_owner s | Send_owner_value s | Recv_owner s | Recv_owner_value s ->
        sec s
    | Recv_value { into; from } ->
        sec into;
        sec from
    | Apply { args; _ } -> List.iter sec args
  in
  List.iter st p.body;
  List.rev !order

let infer_types (p : program) scalars vars =
  let tys = Hashtbl.create 32 in
  let cur v = match Hashtbl.find_opt tys v with Some t -> t | None -> SBot in
  let changed = ref true in
  let bind v t =
    let nt = join (cur v) t in
    if nt <> cur v then begin
      Hashtbl.replace tys v nt;
      changed := true
    end
  in
  List.iter
    (fun (v, x) ->
      bind v
        (match x with
        | Value.VInt _ -> SInt
        | Value.VFloat _ -> SFloat
        | Value.VBool _ -> SBool))
    scalars;
  let rec st = function
    | Assign (Lvar v, e) -> bind v (ty_of tys SBot e)
    | For { var; body; _ } ->
        bind var SInt;
        List.iter st body
    | Guard (_, body) -> List.iter st body
    | If (_, a, b) ->
        List.iter st a;
        List.iter st b
    | _ -> ()
  in
  while !changed do
    changed := false;
    List.iter st p.body
  done;
  (* never-bound or unresolvable variables execute through the boxed
     path (an unbound read still raises at run time) *)
  List.iter
    (fun v ->
      match Hashtbl.find_opt tys v with
      | None | Some SBot -> Hashtbl.replace tys v SDyn
      | Some _ -> ())
    vars;
  tys

type kind = KInt | KFloat | KVal
type slot = { v_kind : kind; v_off : int; v_id : int }

type ctx = {
  cm : Costmodel.t;
  kernels : Xdp.Kernels.registry;
  tys : (string, sty) Hashtbl.t;
  slots : (string, slot) Hashtbl.t;
  shape_of : string -> int list;
  mutable nsites : int;
  mutable site_ranks : int list; (* reversed *)
}

let ty ctx e = ty_of ctx.tys SDyn e

let slot ctx v =
  match Hashtbl.find_opt ctx.slots v with
  | Some s -> s
  | None -> assert false (* collect_vars saw every name *)

let new_site ctx rank =
  let k = ctx.nsites in
  ctx.nsites <- k + 1;
  ctx.site_ranks <- rank :: ctx.site_ranks;
  k

(* ------------------------------------------------------------------ *)
(* The staging framework: a compiled fragment carries the statically
   known cost of its non-aborting prefix (a Costmodel.tally, turned
   into one charge by the consumer), an "aborts" flag, and the run
   closure.  Composition folds costs left to right until the first
   fragment that may abort (raise Unowned_ref/Blocked_on or perform
   runtime-valued charges); everything after such a fragment charges
   itself at run time, preserving the interpreter's exact clock at
   every abort point. *)

type 'a frag = { cost : Costmodel.tally; ab : bool; run : machine -> 'a }

let pure x = { cost = Costmodel.tally_zero; ab = false; run = (fun _ -> x) }
let lift f = { cost = Costmodel.tally_zero; ab = false; run = f }
let map f p = { p with run = (fun m -> f (p.run m)) }

(* Charge the fragment's static head cost, then run it. *)
let charged ctx p =
  if Costmodel.tally_is_zero p.cost then p.run
  else
    let c = Costmodel.tally_cost ctx.cm p.cost in
    fun m ->
      m.m_w.w_charge c;
      p.run m

(* Prefix cost (charged before the fragment runs). *)
let tcost t p = { p with cost = Costmodel.tally_add t p.cost }

(* Cost charged after the fragment's value is produced; folds into the
   static head when the fragment cannot abort. *)
let post ctx t p =
  if not p.ab then { p with cost = Costmodel.tally_add p.cost t }
  else if Costmodel.tally_is_zero t then p
  else
    let c = Costmodel.tally_cost ctx.cm t in
    {
      p with
      run =
        (fun m ->
          let x = p.run m in
          m.m_w.w_charge c;
          x);
    }

(* Run [a] then [b], combining with [f]; left-to-right, costs fold
   across the pair while [a] cannot abort. *)
let map2 ctx f a b =
  if not a.ab then
    {
      cost = Costmodel.tally_add a.cost b.cost;
      ab = b.ab;
      run =
        (fun m ->
          let x = a.run m in
          f x (b.run m));
    }
  else
    let br = charged ctx b in
    {
      cost = a.cost;
      ab = true;
      run =
        (fun m ->
          let x = a.run m in
          f x (br m));
    }

let seq2 ctx (a : unit frag) b =
  if not a.ab then
    {
      cost = Costmodel.tally_add a.cost b.cost;
      ab = b.ab;
      run =
        (fun m ->
          a.run m;
          b.run m);
    }
  else
    let br = charged ctx b in
    {
      cost = a.cost;
      ab = true;
      run =
        (fun m ->
          a.run m;
          br m);
    }

let rec seq_list ctx = function
  | [] -> pure []
  | p :: rest -> map2 ctx (fun x xs -> x :: xs) p (seq_list ctx rest)

(* ------------------------------------------------------------------ *)
(* Element-access inline caches. *)

let fresh_site rank =
  {
    s_idx = Array.make rank 0;
    s_gen = min_int;
    s_data = [||];
    s_lo = Array.make rank 0;
    s_hi = Array.make rank 0;
    s_stride = Array.make rank 1;
    s_cnt = Array.make rank 1;
    s_box = None;
  }

(* Row-major offset of the site's scratch index in the cached segment
   geometry (Horner form), or -1 when the index is outside it. *)
let rec site_off s d n acc =
  if d >= n then acc
  else
    let i = s.s_idx.(d) in
    let k = i - s.s_lo.(d) in
    let st = s.s_stride.(d) in
    if k < 0 || i > s.s_hi.(d) || k mod st <> 0 then -1
    else site_off s (d + 1) n ((acc * s.s_cnt.(d)) + (k / st))

let fill_site st s (seg : Symtab.seg) =
  match seg.Symtab.data with
  | None -> s.s_gen <- min_int
  | Some data ->
      List.iteri
        (fun d (tr : Triplet.t) ->
          s.s_lo.(d) <- tr.Triplet.lo;
          s.s_hi.(d) <- tr.Triplet.hi;
          s.s_stride.(d) <- tr.Triplet.stride;
          s.s_cnt.(d) <- Triplet.count tr)
        (Box.dims seg.Symtab.seg_box);
      s.s_data <- data;
      s.s_gen <- Symtab.generation st

let refill st s arr =
  match Symtab.elem_seg st arr s.s_idx with
  | Some seg when seg.Symtab.status <> State.Unowned -> fill_site st s seg
  | _ -> s.s_gen <- min_int

let unowned_ref arr (idx : int array) =
  Evalexpr.Unowned_ref (arr ^ Box.to_string (Box.point (Array.to_list idx)))

(* Read miss: exact interpreter semantics (ownership check, then the
   no-storage diagnostic of Symtab), plus a cache refill. *)
let slow_read m s arr =
  let st = m.m_w.w_st in
  if not (Symtab.owned_element st arr s.s_idx) then raise (unowned_ref arr s.s_idx);
  let v = Symtab.get_a st arr s.s_idx in
  refill st s arr;
  v

let read_site m k arr =
  let s = m.m_sites.(k) in
  let st = m.m_w.w_st in
  if s.s_gen = Symtab.generation st then begin
    let off = site_off s 0 (Array.length s.s_idx) 0 in
    if off >= 0 then Array.unsafe_get s.s_data off else slow_read m s arr
  end
  else slow_read m s arr

(* Write-site ownership check, returning the cached storage offset or
   -1 when the element is owned but the cache could not be (re)filled
   (the store then goes through Symtab.set_a for exact diagnostics). *)
let slow_write_check m s arr =
  let st = m.m_w.w_st in
  if not (Symtab.owned_element st arr s.s_idx) then
    raise
      (m.m_w.w_misuse
         (Printf.sprintf "write to unowned element %s"
            (arr ^ Box.to_string (Box.point (Array.to_list s.s_idx)))));
  refill st s arr;
  if s.s_gen = Symtab.generation st then
    site_off s 0 (Array.length s.s_idx) 0
  else -1

let write_check m k arr =
  let s = m.m_sites.(k) in
  let st = m.m_w.w_st in
  if s.s_gen = Symtab.generation st then begin
    let off = site_off s 0 (Array.length s.s_idx) 0 in
    if off >= 0 then off else slow_write_check m s arr
  end
  else slow_write_check m s arr

let store_site m k arr x off =
  let s = m.m_sites.(k) in
  if off >= 0 then Array.unsafe_set s.s_data off x
  else Symtab.set_a m.m_w.w_st arr s.s_idx x

(* ------------------------------------------------------------------ *)
(* Expression compilers.  [ci]/[cf]/[cb] require the expression's
   static type to be SInt/SFloat/SBool respectively; [cv] compiles any
   expression to its boxed Value with exact interpreter semantics. *)

let exn_div0 = Invalid_argument "Value: integer division by zero"
let exn_mod0 = Invalid_argument "Value: modulo by zero"
let vtrue = Value.VBool true
let vfalse = Value.VBool false

let read_slot_check v (sl : slot) =
  let ex = Invalid_argument (Printf.sprintf "unbound scalar variable %s" v) in
  fun m -> if Bytes.unsafe_get m.m_bnd sl.v_id = '\000' then raise ex

let rec ci ctx e : int frag =
  match e with
  | Int n -> pure n
  | Mypid -> lift (fun m -> m.m_pid1)
  | Nprocs -> lift (fun m -> m.m_w.w_nprocs)
  | Var v ->
      let sl = slot ctx v in
      let check = read_slot_check v sl in
      let off = sl.v_off in
      lift (fun m ->
          check m;
          Array.unsafe_get m.m_ints off)
  | Bin (op, a, b) ->
      let ca = ci ctx a and cb_ = ci ctx b in
      let c =
        match op with
        | Add -> map2 ctx ( + ) ca cb_
        | Sub -> map2 ctx ( - ) ca cb_
        | Mul -> map2 ctx ( * ) ca cb_
        | Div ->
            map2 ctx (fun x y -> if y = 0 then raise exn_div0 else x / y) ca cb_
        | Mod ->
            map2 ctx
              (fun x y -> if y = 0 then raise exn_mod0 else x mod y)
              ca cb_
        | Min -> map2 ctx (fun (x : int) y -> if x <= y then x else y) ca cb_
        | Max -> map2 ctx (fun (x : int) y -> if x >= y then x else y) ca cb_
        | _ -> assert false
      in
      tcost Costmodel.tally_int_op c
  | Un (Neg, a) -> tcost Costmodel.tally_int_op (map (fun x -> -x) (ci ctx a))
  | Mylb (s, d) ->
      let cs = csec ctx s in
      let arr = s.arr in
      {
        cost = cs.cost;
        ab = cs.ab;
        run =
          (fun m ->
            match m.m_w.w_mylb arr (cs.run m) d with
            | Some i -> i
            | None -> max_int);
      }
  | Myub (s, d) ->
      let cs = csec ctx s in
      let arr = s.arr in
      {
        cost = cs.cost;
        ab = cs.ab;
        run =
          (fun m ->
            match m.m_w.w_myub arr (cs.run m) d with
            | Some i -> i
            | None -> min_int);
      }
  | _ -> assert false

and cf ctx e : float frag =
  match e with
  | Float x -> pure x
  | Var v ->
      let sl = slot ctx v in
      let check = read_slot_check v sl in
      let off = sl.v_off in
      lift (fun m ->
          check m;
          Array.unsafe_get m.m_flts off)
  | Elem (a, idxs) -> celem ctx a idxs
  | Bin (op, a, b) ->
      let ca = cnum ctx a and cb_ = cnum ctx b in
      let c =
        match op with
        | Add -> map2 ctx ( +. ) ca cb_
        | Sub -> map2 ctx ( -. ) ca cb_
        | Mul -> map2 ctx ( *. ) ca cb_
        | Div -> map2 ctx ( /. ) ca cb_
        | Min -> map2 ctx Float.min ca cb_
        | Max -> map2 ctx Float.max ca cb_
        | _ -> assert false
      in
      tcost Costmodel.tally_int_op c
  | Un (Neg, a) ->
      tcost Costmodel.tally_int_op (map (fun x -> -.x) (cf ctx a))
  | _ -> assert false

(* Numeric operand of a float-typed operation: a statically-int
   subexpression is coerced exactly like Value.to_float. *)
and cnum ctx e =
  match ty ctx e with
  | SInt -> map float_of_int (ci ctx e)
  | SFloat -> cf ctx e
  | _ -> assert false

and cb ctx e : bool frag =
  match e with
  | Bool b -> pure b
  | Var v ->
      let sl = slot ctx v in
      let check = read_slot_check v sl in
      let off = sl.v_off in
      lift (fun m ->
          check m;
          Value.to_bool m.m_vals.(off))
  | Iown s ->
      let cs = csec ctx s in
      let arr = s.arr in
      {
        cost = cs.cost;
        ab = true;
        run = (fun m -> m.m_w.w_iown arr (cs.run m));
      }
  | Accessible s ->
      let cs = csec ctx s in
      let arr = s.arr in
      {
        cost = cs.cost;
        ab = true;
        run = (fun m -> m.m_w.w_accessible arr (cs.run m));
      }
  | Await s ->
      let cs = csec ctx s in
      let arr = s.arr in
      {
        cost = cs.cost;
        ab = true;
        run = (fun m -> m.m_w.w_await arr (cs.run m));
      }
  | Un (Not, a) -> tcost Costmodel.tally_int_op (map not (c_bool ctx a))
  | Bin (And, a, b) ->
      let ca = c_bool ctx a in
      let br = charged ctx (c_bool ctx b) in
      tcost Costmodel.tally_int_op
        {
          cost = ca.cost;
          ab = true;
          run = (fun m -> if ca.run m then br m else false);
        }
  | Bin (Or, a, b) ->
      let ca = c_bool ctx a in
      let br = charged ctx (c_bool ctx b) in
      tcost Costmodel.tally_int_op
        {
          cost = ca.cost;
          ab = true;
          run = (fun m -> if ca.run m then true else br m);
        }
  | Bin (((Eq | Ne | Lt | Le | Gt | Ge) as op), a, b) ->
      let c =
        match (ty ctx a, ty ctx b) with
        | SInt, SInt ->
            let ca = ci ctx a and cb_ = ci ctx b in
            let f : int -> int -> bool =
              match op with
              | Eq -> ( = )
              | Ne -> ( <> )
              | Lt -> ( < )
              | Le -> ( <= )
              | Gt -> ( > )
              | Ge -> ( >= )
              | _ -> assert false
            in
            map2 ctx f ca cb_
        | (SInt | SFloat), (SInt | SFloat) ->
            (* the interpreter compares via polymorphic [compare] on
               floats, i.e. the total order of Float.compare *)
            let ca = cnum ctx a and cb_ = cnum ctx b in
            let f =
              match op with
              | Eq -> fun x y -> Float.compare x y = 0
              | Ne -> fun x y -> Float.compare x y <> 0
              | Lt -> fun x y -> Float.compare x y < 0
              | Le -> fun x y -> Float.compare x y <= 0
              | Gt -> fun x y -> Float.compare x y > 0
              | Ge -> fun x y -> Float.compare x y >= 0
              | _ -> assert false
            in
            map2 ctx f ca cb_
        | SBool, SBool ->
            let ca = cb ctx a and cb_ = cb ctx b in
            let f : bool -> bool -> bool =
              match op with
              | Eq -> ( = )
              | Ne -> ( <> )
              | Lt -> ( < )
              | Le -> ( <= )
              | Gt -> ( > )
              | Ge -> ( >= )
              | _ -> assert false
            in
            map2 ctx f ca cb_
        | _ ->
            map2 ctx
              (fun x y -> Value.to_bool (Value.binop op x y))
              (cv ctx a) (cv ctx b)
      in
      tcost Costmodel.tally_int_op c
  | _ -> assert false

(* Any expression in boolean position (guards, if-conditions, and/or
   operands): statically-bool goes unboxed, everything else through
   Value.to_bool for exact diagnostics. *)
and c_bool ctx e =
  match ty ctx e with
  | SBool -> cb ctx e
  | _ -> map Value.to_bool (cv ctx e)

(* Subscript/bound position: interpreter semantics are
   [Value.to_int (eval e)]. *)
and c_idx ctx e =
  match ty ctx e with SInt -> ci ctx e | _ -> map Value.to_int (cv ctx e)

and cv ctx e : Value.t frag =
  match ty ctx e with
  | SInt -> map (fun n -> Value.VInt n) (ci ctx e)
  | SFloat -> map (fun x -> Value.VFloat x) (cf ctx e)
  | SBool -> map (fun b -> if b then vtrue else vfalse) (cb ctx e)
  | _ -> cvd ctx e

(* Dynamic fallback: mirror Evalexpr.eval exactly. *)
and cvd ctx e =
  match e with
  | Var v ->
      let sl = slot ctx v in
      let check = read_slot_check v sl in
      let off = sl.v_off in
      lift (fun m ->
          check m;
          m.m_vals.(off))
  | Bin (And, a, b) ->
      let ca = c_bool ctx a in
      let br = charged ctx (cv ctx b) in
      tcost Costmodel.tally_int_op
        {
          cost = ca.cost;
          ab = true;
          run = (fun m -> if ca.run m then br m else vfalse);
        }
  | Bin (Or, a, b) ->
      let ca = c_bool ctx a in
      let br = charged ctx (cv ctx b) in
      tcost Costmodel.tally_int_op
        {
          cost = ca.cost;
          ab = true;
          run = (fun m -> if ca.run m then vtrue else br m);
        }
  | Bin (op, a, b) ->
      tcost Costmodel.tally_int_op
        (map2 ctx (Value.binop op) (cv ctx a) (cv ctx b))
  | Un (op, a) ->
      tcost Costmodel.tally_int_op (map (Value.unop op) (cv ctx a))
  | _ -> assert false (* every other constructor has a concrete type *)

(* Element read: subscripts evaluate into the site's scratch buffer
   (charging as they go), one memory charge, then the cached read. *)
and celem ctx arr idxs =
  let k = new_site ctx (List.length idxs) in
  let rec fill d = function
    | [] -> pure ()
    | e :: es ->
        let ce = c_idx ctx e in
        let st =
          {
            cost = ce.cost;
            ab = ce.ab;
            run = (fun m -> m.m_sites.(k).s_idx.(d) <- ce.run m);
          }
        in
        seq2 ctx st (fill (d + 1) es)
  in
  let filled = post ctx Costmodel.tally_mem (fill 0 idxs) in
  {
    cost = filled.cost;
    ab = true;
    run =
      (fun m ->
        filled.run m;
        read_site m k arr);
  }

(* Section resolution.  Per-dimension selectors evaluate left to
   right; inside a Slice the interpreter's [Triplet.make ~lo ~hi
   ~stride] evaluates its arguments right to left (OCaml argument
   order), so stride, hi, lo — replicated here so charges interleave
   identically.  Sections whose subscripts are per-processor constants
   (literals, mypid, nprocs) memoize their box per machine; the
   resolution cost is still charged on every execution. *)
and csec ctx (s : section) : Box.t frag =
  match
    match ctx.shape_of s.arr with
    | shape -> `Shape shape
    | exception e -> `Raise e
  with
  | `Raise e -> { cost = Costmodel.tally_zero; ab = true; run = (fun _ -> raise e) }
  | `Shape shape ->
      if List.length s.sel <> List.length shape then begin
        let msg =
          Printf.sprintf "section %s: rank mismatch"
            (Xdp.Pp.section_to_string s)
        in
        {
          cost = Costmodel.tally_zero;
          ab = true;
          run = (fun _ -> invalid_arg msg);
        }
      end
      else begin
        let dims =
          List.map2
            (fun sel extent ->
              match sel with
              | All -> pure (Triplet.range 1 extent)
              | At e -> map Triplet.point (c_idx ctx e)
              | Slice (lo, hi, st) ->
                  let cst = c_idx ctx st in
                  let chi = c_idx ctx hi in
                  let clo = c_idx ctx lo in
                  let p = map2 ctx (fun st hi -> (st, hi)) cst chi in
                  map2 ctx
                    (fun (st, hi) lo -> Triplet.make ~lo ~hi ~stride:st)
                    p clo)
            s.sel shape
        in
        let boxed = map Box.make (seq_list ctx dims) in
        let rec static_e = function
          | Int _ | Float _ | Bool _ | Mypid | Nprocs -> true
          | Bin (_, a, b) -> static_e a && static_e b
          | Un (_, a) -> static_e a
          | Var _ | Elem _ | Mylb _ | Myub _ | Iown _ | Accessible _
          | Await _ ->
              false
        in
        let static_sel =
          List.for_all
            (function
              | All -> true
              | At e -> static_e e
              | Slice (a, b, c) -> static_e a && static_e b && static_e c)
            s.sel
        in
        if static_sel && not boxed.ab then begin
          let k = new_site ctx 0 in
          {
            boxed with
            run =
              (fun m ->
                let site = m.m_sites.(k) in
                match site.s_box with
                | Some b -> b
                | None ->
                    let b = boxed.run m in
                    site.s_box <- Some b;
                    b);
          }
        end
        else boxed
      end

(* ------------------------------------------------------------------ *)
(* Statement compilation. *)

(* Float-valued right-hand side of an element store: interpreter does
   [Value.to_float (eval e)]. *)
let c_float_rhs ctx e =
  match ty ctx e with
  | SFloat -> cf ctx e
  | SInt -> map float_of_int (ci ctx e)
  | _ -> map Value.to_float (cv ctx e)

let unowned_read_misuse m n =
  raise
    (m.m_w.w_misuse
       (Printf.sprintf "read of unowned %s outside a compute rule" n))

let rec cstmt ctx (s : stmt) : code =
  match s with
  | Assign (Lvar v, e) -> (
      let sl = slot ctx v in
      let off = sl.v_off and id = sl.v_id in
      match sl.v_kind with
      | KInt ->
          let r = charged ctx (post ctx Costmodel.tally_mem (ci ctx e)) in
          fun m ->
            let x =
              try r m with Evalexpr.Unowned_ref n -> unowned_read_misuse m n
            in
            Array.unsafe_set m.m_ints off x;
            Bytes.unsafe_set m.m_bnd id '\001';
            A_next
      | KFloat ->
          let r = charged ctx (post ctx Costmodel.tally_mem (cf ctx e)) in
          fun m ->
            let x =
              try r m with Evalexpr.Unowned_ref n -> unowned_read_misuse m n
            in
            Array.unsafe_set m.m_flts off x;
            Bytes.unsafe_set m.m_bnd id '\001';
            A_next
      | KVal ->
          let r = charged ctx (post ctx Costmodel.tally_mem (cv ctx e)) in
          fun m ->
            let x =
              try r m with Evalexpr.Unowned_ref n -> unowned_read_misuse m n
            in
            m.m_vals.(off) <- x;
            Bytes.unsafe_set m.m_bnd id '\001';
            A_next)
  | Assign (Lelem (a, idxs), e) ->
      let k = new_site ctx (List.length idxs) in
      let rec fill d = function
        | [] -> pure ()
        | ie :: es ->
            let ce = c_idx ctx ie in
            let st =
              {
                cost = ce.cost;
                ab = ce.ab;
                run = (fun m -> m.m_sites.(k).s_idx.(d) <- ce.run m);
              }
            in
            seq2 ctx st (fill (d + 1) es)
      in
      let fillr = charged ctx (fill 0 idxs) in
      let rhsr =
        charged ctx (post ctx Costmodel.tally_mem (c_float_rhs ctx e))
      in
      fun m ->
        fillr m;
        let off = write_check m k a in
        let x =
          try rhsr m with Evalexpr.Unowned_ref n -> unowned_read_misuse m n
        in
        store_site m k a x off;
        A_next
  | Guard (g, body) ->
      let cg = c_bool ctx g in
      let head =
        Costmodel.tally_cost ctx.cm
          (Costmodel.tally_add Costmodel.tally_guard cg.cost)
      in
      let bodyc = cblock ctx body in
      fun m ->
        m.m_w.w_guard_eval ();
        if head <> 0.0 then m.m_w.w_charge head;
        let b = try cg.run m with Evalexpr.Unowned_ref _ -> false in
        if b then begin
          m.m_w.w_guard_hit ();
          A_block bodyc
        end
        else A_next
  | For { var; lo; hi; step; body; _ } ->
      let cl = c_idx ctx lo and ch = c_idx ctx hi and cs = c_idx ctx step in
      let trip = map2 ctx (fun a b -> (a, b)) cl ch in
      let trip = map2 ctx (fun (a, b) c -> (a, b, c)) trip cs in
      let tripr = charged ctx trip in
      let sl = slot ctx var in
      let off = sl.v_off and id = sl.v_id in
      let set =
        match sl.v_kind with
        | KInt ->
            fun m n ->
              Array.unsafe_set m.m_ints off n;
              Bytes.unsafe_set m.m_bnd id '\001'
        | KVal ->
            fun m n ->
              m.m_vals.(off) <- Value.VInt n;
              Bytes.unsafe_set m.m_bnd id '\001'
        | KFloat -> assert false (* loop vars are never float-typed *)
      in
      let bodyc = cblock ctx body in
      let int_op = ctx.cm.Costmodel.time_int_op in
      fun m ->
        let lo, hi, step = tripr m in
        if step <= 0 then raise (m.m_w.w_misuse "non-positive loop step");
        m.m_w.w_charge int_op;
        if lo <= hi then
          A_loop { l_lo = lo; l_hi = hi; l_step = step; l_set = set; l_body = bodyc }
        else A_next
  | If (c, a, b) ->
      let cc = charged ctx (c_bool ctx c) in
      let ca = cblock ctx a and cbk = cblock ctx b in
      fun m ->
        let v =
          try cc m
          with Evalexpr.Unowned_ref n ->
            raise
              (m.m_w.w_misuse
                 (Printf.sprintf "read of unowned %s in if-condition" n))
        in
        A_block (if v then ca else cbk)
  | Send_value (s, dest) -> (
      let r = charged ctx (csec ctx s) in
      let arr = s.arr in
      match dest with
      | Unspecified ->
          let none_thunk () = None in
          fun m ->
            let box = r m in
            m.m_w.w_send_value ~arr ~box ~dests:none_thunk;
            A_next
      | Directed es ->
          let cds = List.map (fun e -> charged ctx (c_idx ctx e)) es in
          fun m ->
            let box = r m in
            m.m_w.w_send_value ~arr ~box
              ~dests:(fun () ->
                Some
                  (List.map
                     (fun dr ->
                       let pid1 = dr m in
                       if pid1 < 1 || pid1 > m.m_w.w_nprocs then
                         raise
                           (m.m_w.w_misuse
                              (Printf.sprintf
                                 "send directed to invalid processor %d" pid1));
                       pid1 - 1)
                     cds));
            A_next)
  | Send_owner s ->
      let r = charged ctx (csec ctx s) in
      let arr = s.arr in
      fun m ->
        m.m_w.w_send_owner ~with_value:false ~arr ~box:(r m);
        A_next
  | Send_owner_value s ->
      let r = charged ctx (csec ctx s) in
      let arr = s.arr in
      fun m ->
        m.m_w.w_send_owner ~with_value:true ~arr ~box:(r m);
        A_next
  | Recv_owner s ->
      let r = charged ctx (csec ctx s) in
      let arr = s.arr in
      fun m ->
        m.m_w.w_recv_owner ~with_value:false ~arr ~box:(r m);
        A_next
  | Recv_owner_value s ->
      let r = charged ctx (csec ctx s) in
      let arr = s.arr in
      fun m ->
        m.m_w.w_recv_owner ~with_value:true ~arr ~box:(r m);
        A_next
  | Recv_value { into; from } ->
      let cinto = csec ctx into and cfrom = csec ctx from in
      let both = map2 ctx (fun a b -> (a, b)) cinto cfrom in
      let r = charged ctx both in
      let ia = into.arr and fa = from.arr in
      fun m ->
        let ib, fb = r m in
        m.m_w.w_recv_value ~into:(ia, ib) ~from:(fa, fb);
        A_next
  | Apply { fn; args } -> (
      match Xdp.Kernels.find ctx.kernels fn with
      | None ->
          fun m ->
            raise
              (m.m_w.w_misuse (Printf.sprintf "unknown kernel %s" fn))
      | Some k ->
          let names = List.map (fun (s : section) -> s.arr) args in
          let r = charged ctx (seq_list ctx (List.map (csec ctx) args)) in
          fun m ->
            let boxes = r m in
            m.m_w.w_apply ~fn k (List.combine names boxes);
            A_next)

and cblock ctx stmts = Array.of_list (List.map (cstmt ctx) stmts)

(* ------------------------------------------------------------------ *)

type cprog = {
  c_body : code array;
  c_nints : int;
  c_nflts : int;
  c_nvals : int;
  c_nvars : int;
  c_site_ranks : int array;
  c_seed : (slot * Value.t) list;
}

let body cp = cp.c_body

let compile ~cost ~kernels ~scalars (p : program) =
  let vars = collect_vars p scalars in
  let tys = infer_types p scalars vars in
  let slots = Hashtbl.create 32 in
  let ni = ref 0 and nf = ref 0 and nv = ref 0 in
  List.iteri
    (fun id v ->
      let kind, off =
        match Hashtbl.find tys v with
        | SInt ->
            incr ni;
            (KInt, !ni - 1)
        | SFloat ->
            incr nf;
            (KFloat, !nf - 1)
        | SBool | SDyn ->
            incr nv;
            (KVal, !nv - 1)
        | SBot -> assert false
      in
      Hashtbl.add slots v { v_kind = kind; v_off = off; v_id = id })
    vars;
  let ctx =
    {
      cm = cost;
      kernels;
      tys;
      slots;
      shape_of =
        (fun name -> Xdp_dist.Layout.shape (decl_of p name).layout);
      nsites = 0;
      site_ranks = [];
    }
  in
  let body = cblock ctx p.body in
  {
    c_body = body;
    c_nints = !ni;
    c_nflts = !nf;
    c_nvals = !nv;
    c_nvars = List.length vars;
    c_site_ranks = Array.of_list (List.rev ctx.site_ranks);
    c_seed =
      List.map (fun (v, x) -> (Hashtbl.find slots v, x)) scalars;
  }

let machine cp w =
  let m =
    {
      m_pid1 = w.w_pid1;
      m_ints = Array.make cp.c_nints 0;
      m_flts = Array.make cp.c_nflts 0.0;
      m_vals = Array.make cp.c_nvals vfalse;
      m_bnd = Bytes.make cp.c_nvars '\000';
      m_sites = Array.map fresh_site cp.c_site_ranks;
      m_w = w;
    }
  in
  List.iter
    (fun ((sl : slot), x) ->
      (match sl.v_kind with
      | KInt -> m.m_ints.(sl.v_off) <- Value.to_int x
      | KFloat -> m.m_flts.(sl.v_off) <- Value.to_float x
      | KVal -> m.m_vals.(sl.v_off) <- x);
      Bytes.set m.m_bnd sl.v_id '\001')
    cp.c_seed;
  m
