(* The NIC program IR: a deliberately tiny, loop-free fragment.

   A program is a first-match-wins list of guarded instructions over
   the integer header fields of a packet (source, destination, element
   count, wire bytes) and a bounded bank of per-NIC scratch registers.
   Expressions are straight-line integer arithmetic; the only
   "control flow" is the branchless select [Sel], eBPF's cmov.  The
   action of the firing instruction decides the packet's fate:
   pass/drop/redirect (filters), fold into an aggregation bank
   (in-network reduction), or replicate to k destinations (multicast
   fan-out).  No loops, no symbol-table access, no floats in guards —
   which is what makes attach-time verification (see {!Verify})
   decidable and the per-packet cost statically bounded. *)

type field = F_src | F_dst | F_elems | F_bytes

type binop = Add | Sub | Mul | Div | Mod | Min | Max

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type exp =
  | Lit of int
  | Fld of field
  | Reg of int
  | Bin of binop * exp * exp
  | Sel of cond * exp * exp  (* branchless if: cond ? a : b *)

and cond =
  | True
  | Cmp of cmp * exp * exp
  | All of cond list
  | Any of cond list
  | Not of cond

type aggop = A_sum | A_prod | A_min | A_max

(* Where an aggregation bank emits once every contributor slot is
   filled: deliver to the host this NIC serves (under a fixed
   rendezvous name a normal [recv] can match), or forward one hop to
   another processor's NIC.  The [To_nic] target is a static pid so
   the attach-time acyclicity check over the forwarding graph is
   decidable. *)
type emit = To_host of string | To_nic of int  (* 1-based pid *)

type action =
  | Pass
  | Drop
  | Redirect of exp  (* 1-based destination pid *)
  | Fanout of exp list  (* 1-based destination pids *)
  | Aggregate of { slot : exp; arity : int; op : aggop; emit : emit }

type instr = { guard : cond; sets : (int * exp) list; action : action }

type t = { name : string; instrs : instr list }

(* Hard bounds enforced by {!Verify}: the register file and program
   length are what make "straight-line" a real resource bound. *)
let max_regs = 16
let max_instrs = 64

(* ------------------------------------------------------------------ *)
(* Builders, so attached programs read like programs and not like
   constructor soup. *)

let lit n = Lit n
let src = Fld F_src
let dst = Fld F_dst
let elems = Fld F_elems
let bytes = Fld F_bytes
let reg r = Reg r
let add a b = Bin (Add, a, b)
let sub a b = Bin (Sub, a, b)
let mul a b = Bin (Mul, a, b)
let sel c a b = Sel (c, a, b)
let eq a b = Cmp (Eq, a, b)
let ne a b = Cmp (Ne, a, b)
let lt a b = Cmp (Lt, a, b)
let le a b = Cmp (Le, a, b)
let gt a b = Cmp (Gt, a, b)
let ge a b = Cmp (Ge, a, b)
let between x lo hi = All [ ge x (lit lo); le x (lit hi) ]
let instr ?(sets = []) guard action = { guard; sets; action }
let make ~name instrs = { name; instrs }

(* ------------------------------------------------------------------ *)
(* Printing (diagnostics and traces). *)

let field_name = function
  | F_src -> "src"
  | F_dst -> "dst"
  | F_elems -> "elems"
  | F_bytes -> "bytes"

let binop_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Min -> "min"
  | Max -> "max"

let cmp_name = function
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let aggop_name = function
  | A_sum -> "sum"
  | A_prod -> "prod"
  | A_min -> "min"
  | A_max -> "max"

let rec exp_to_string = function
  | Lit n -> string_of_int n
  | Fld f -> field_name f
  | Reg r -> Printf.sprintf "r%d" r
  | Bin (((Min | Max) as op), a, b) ->
      Printf.sprintf "%s(%s, %s)" (binop_name op) (exp_to_string a)
        (exp_to_string b)
  | Bin (op, a, b) ->
      Printf.sprintf "(%s %s %s)" (exp_to_string a) (binop_name op)
        (exp_to_string b)
  | Sel (c, a, b) ->
      Printf.sprintf "(%s ? %s : %s)" (cond_to_string c) (exp_to_string a)
        (exp_to_string b)

and cond_to_string = function
  | True -> "true"
  | Cmp (c, a, b) ->
      Printf.sprintf "%s %s %s" (exp_to_string a) (cmp_name c)
        (exp_to_string b)
  | All cs -> "(" ^ String.concat " && " (List.map cond_to_string cs) ^ ")"
  | Any cs -> "(" ^ String.concat " || " (List.map cond_to_string cs) ^ ")"
  | Not c -> "!" ^ cond_to_string c

let action_to_string = function
  | Pass -> "pass"
  | Drop -> "drop"
  | Redirect e -> "redirect -> P" ^ exp_to_string e
  | Fanout es ->
      "fanout -> ["
      ^ String.concat ", " (List.map (fun e -> "P" ^ exp_to_string e) es)
      ^ "]"
  | Aggregate { slot; arity; op; emit } ->
      Printf.sprintf "aggregate %s slot=%s arity=%d %s" (aggop_name op)
        (exp_to_string slot) arity
        (match emit with
        | To_host name -> Printf.sprintf "emit-> host %s" name
        | To_nic p -> Printf.sprintf "emit-> nic P%d" p)

let instr_to_string i =
  let sets =
    match i.sets with
    | [] -> ""
    | ss ->
        " { "
        ^ String.concat "; "
            (List.map
               (fun (r, e) -> Printf.sprintf "r%d := %s" r (exp_to_string e))
               ss)
        ^ " }"
  in
  Printf.sprintf "when %s%s: %s" (cond_to_string i.guard) sets
    (action_to_string i.action)

let to_string p =
  Printf.sprintf "nic program '%s':\n%s" p.name
    (String.concat "\n"
       (List.mapi
          (fun k i -> Printf.sprintf "  %2d. %s" k (instr_to_string i))
          p.instrs))

(* Forwarding edges of the program: the static [To_nic] targets
   (1-based), used by the fabric's attach-time acyclicity check. *)
let forward_targets p =
  List.filter_map
    (fun i ->
      match i.action with
      | Aggregate { emit = To_nic q; _ } -> Some q
      | _ -> None)
    p.instrs
