(* The programmable-NIC fabric: verified {!Prog} programs attached
   per processor, staged once into closures at attach time (the same
   compile-once discipline as [Precompile]) and run on every directed
   value packet addressed to their processor.

   Placement in the stack (the idempotence-under-retransmit argument,
   DESIGN.md §9): the fabric interposes {e above} the rendezvous
   board and the reliable transport — a packet traverses

     host send -> NIC fabric (filter/aggregate/fanout) -> board/transport

   so NIC state is driven exclusively by the host program's posting
   order, which is identical between faulty and fault-free runs.
   Wire-level drop/duplicate/retransmit happen strictly below, on the
   messages the fabric chose to emit; a retransmitted or duplicated
   packet can therefore never re-run a NIC program, and aggregation
   banks are slot-indexed (last-write-wins, combined in slot order at
   emit time), so even a re-offered contribution would leave the
   emitted payload bit-identical.

   Timing: every fabric hop (host->NIC ingress, NIC->NIC forwarding)
   costs [nic_alpha + nic_beta*bytes], and each processed packet pays
   the program's static cost [nic_op * (1 + instrs)] — the distinct,
   much cheaper cost axis of NIC-originated traffic.  Whatever the
   fabric emits re-enters the ordinary board/transport path and pays
   full endpoint prices (and suffers the fault plan) from there. *)

module Costmodel = Xdp_sim.Costmodel
module Board = Xdp_sim.Board
module Trace = Xdp_sim.Trace

exception Nic_misuse of string

type pkt = { k_src1 : int; k_dst1 : int; k_elems : int; k_bytes : int }

type bank = {
  b_arity : int;
  b_op : Prog.aggop;
  b_emit : Prog.emit;
  b_vals : float array option array;  (* slot -> contribution *)
  b_ready : float array;  (* slot -> fabric arrival time *)
  mutable b_filled : int;
}

type caction =
  | C_pass
  | C_drop
  | C_redirect of (int array -> pkt -> int)
  | C_fanout of (int array -> pkt -> int) array
  | C_aggregate of { bank : bank; slot : int array -> pkt -> int }

type cinstr = {
  ci_guard : int array -> pkt -> bool;
  ci_sets : (int * (int array -> pkt -> int)) array;
  ci_action : caction;
}

type nic = {
  n_pid : int;  (* 0-based *)
  n_name : string;
  n_regs : int array;
  n_cost : float;  (* static per-packet program cost *)
  n_instrs : cinstr array;
}

type t = {
  f_nprocs : int;
  f_cost : Costmodel.t;
  f_tr : Trace.t;
  f_post :
    time:float ->
    src:int ->
    name:string ->
    kind:Board.kind ->
    payload:float array ->
    directed:int list option ->
    unit;
  f_nics : nic option array;
  mutable f_packets : int;
  mutable f_filtered : int;
  mutable f_redirected : int;
  mutable f_absorbed : int;
  mutable f_emitted : int;
  mutable f_fanout_copies : int;
  mutable f_bytes : int;
}

(* ------------------------------------------------------------------ *)
(* Staging: one closure per expression node, built once at attach.
   Division and modulo are total (x/0 = 0) so every program is a pure
   function of (registers, header) — the verifier already rejected
   constant zero divisors as programmer error. *)

let rec compile_exp (e : Prog.exp) : int array -> pkt -> int =
  match e with
  | Prog.Lit n -> fun _ _ -> n
  | Prog.Fld Prog.F_src -> fun _ p -> p.k_src1
  | Prog.Fld Prog.F_dst -> fun _ p -> p.k_dst1
  | Prog.Fld Prog.F_elems -> fun _ p -> p.k_elems
  | Prog.Fld Prog.F_bytes -> fun _ p -> p.k_bytes
  | Prog.Reg r -> fun regs _ -> Array.unsafe_get regs r
  | Prog.Bin (op, a, b) -> (
      let a = compile_exp a and b = compile_exp b in
      match op with
      | Prog.Add -> fun r p -> a r p + b r p
      | Prog.Sub -> fun r p -> a r p - b r p
      | Prog.Mul -> fun r p -> a r p * b r p
      | Prog.Div -> fun r p -> (match b r p with 0 -> 0 | d -> a r p / d)
      | Prog.Mod -> fun r p -> (match b r p with 0 -> 0 | d -> a r p mod d)
      | Prog.Min -> fun r p -> Int.min (a r p) (b r p)
      | Prog.Max -> fun r p -> Int.max (a r p) (b r p))
  | Prog.Sel (c, x, y) ->
      let c = compile_cond c and x = compile_exp x and y = compile_exp y in
      fun r p -> if c r p then x r p else y r p

and compile_cond (c : Prog.cond) : int array -> pkt -> bool =
  match c with
  | Prog.True -> fun _ _ -> true
  | Prog.Cmp (op, a, b) -> (
      let a = compile_exp a and b = compile_exp b in
      match op with
      | Prog.Eq -> fun r p -> a r p = b r p
      | Prog.Ne -> fun r p -> a r p <> b r p
      | Prog.Lt -> fun r p -> a r p < b r p
      | Prog.Le -> fun r p -> a r p <= b r p
      | Prog.Gt -> fun r p -> a r p > b r p
      | Prog.Ge -> fun r p -> a r p >= b r p)
  | Prog.All cs ->
      let cs = Array.of_list (List.map compile_cond cs) in
      fun r p -> Array.for_all (fun c -> c r p) cs
  | Prog.Any cs ->
      let cs = Array.of_list (List.map compile_cond cs) in
      fun r p -> Array.exists (fun c -> c r p) cs
  | Prog.Not c ->
      let c = compile_cond c in
      fun r p -> not (c r p)

let compile_instr (i : Prog.instr) : cinstr =
  {
    ci_guard = compile_cond i.Prog.guard;
    ci_sets =
      Array.of_list
        (List.map (fun (r, e) -> (r, compile_exp e)) i.Prog.sets);
    ci_action =
      (match i.Prog.action with
      | Prog.Pass -> C_pass
      | Prog.Drop -> C_drop
      | Prog.Redirect e -> C_redirect (compile_exp e)
      | Prog.Fanout es ->
          C_fanout (Array.of_list (List.map compile_exp es))
      | Prog.Aggregate { slot; arity; op; emit } ->
          C_aggregate
            {
              bank =
                {
                  b_arity = arity;
                  b_op = op;
                  b_emit = emit;
                  b_vals = Array.make arity None;
                  b_ready = Array.make arity 0.0;
                  b_filled = 0;
                };
              slot = compile_exp slot;
            });
  }

let compile_nic ~cost ~pid (p : Prog.t) =
  {
    n_pid = pid;
    n_name = p.Prog.name;
    n_regs = Array.make Prog.max_regs 0;
    n_cost =
      cost.Costmodel.nic_op
      *. float_of_int (1 + List.length p.Prog.instrs);
    n_instrs = Array.of_list (List.map compile_instr p.Prog.instrs);
  }

(* ------------------------------------------------------------------ *)
(* Attach: verify every program, then check the whole-fabric
   obligations no single program can see — each forwarding target
   must itself have a NIC program, and the forwarding graph must be
   acyclic (so a packet visits a statically bounded number of NICs). *)

let create ~nprocs ~cost ~trace ~post specs =
  let nics = Array.make nprocs None in
  let err = ref None in
  let fail fmt = Printf.ksprintf (fun s -> if !err = None then err := Some s) fmt in
  List.iter
    (fun (pid, p) ->
      if !err <> None then ()
      else if pid < 0 || pid >= nprocs then
        fail "nic program '%s': attached to P%d outside the machine (1..%d)"
          p.Prog.name (pid + 1) nprocs
      else if nics.(pid) <> None then
        fail "P%d has two NIC programs attached" (pid + 1)
      else
        match Verify.check ~nprocs p with
        | Error e -> fail "%s" (Verify.error_to_string e)
        | Ok () -> nics.(pid) <- Some (compile_nic ~cost ~pid p))
    specs;
  (match !err with
  | Some _ -> ()
  | None ->
      (* forwarding edges: every To_nic target attached, and no cycle *)
      let edges = Array.make nprocs [] in
      List.iter
        (fun (pid, p) ->
          List.iter
            (fun q1 ->
              let q = q1 - 1 in
              if nics.(q) = None then
                fail
                  "nic program '%s' on P%d forwards to P%d, which has no \
                   NIC program attached"
                  p.Prog.name (pid + 1) q1
              else edges.(pid) <- q :: edges.(pid))
            (Prog.forward_targets p))
        specs;
      if !err = None then begin
        (* colors: 0 white, 1 on the current path, 2 done *)
        let color = Array.make nprocs 0 in
        let rec dfs path pid =
          if color.(pid) = 1 then
            fail "nic programs form a forwarding cycle: %s"
              (String.concat " -> "
                 (List.rev_map
                    (fun q -> Printf.sprintf "P%d" (q + 1))
                    (pid :: path)))
          else if color.(pid) = 0 then begin
            color.(pid) <- 1;
            List.iter (dfs (pid :: path)) edges.(pid);
            color.(pid) <- 2
          end
        in
        List.iter (fun (pid, _) -> if !err = None then dfs [] pid) specs
      end);
  match !err with
  | Some e -> Error e
  | None ->
      Ok
        {
          f_nprocs = nprocs;
          f_cost = cost;
          f_tr = trace;
          f_post = post;
          f_nics = nics;
          f_packets = 0;
          f_filtered = 0;
          f_redirected = 0;
          f_absorbed = 0;
          f_emitted = 0;
          f_fanout_copies = 0;
          f_bytes = 0;
        }

let handles t dst = dst >= 0 && dst < t.f_nprocs && t.f_nics.(dst) <> None

let misuse nic fmt =
  Printf.ksprintf
    (fun s ->
      raise
        (Nic_misuse
           (Printf.sprintf "nic program '%s' on P%d: %s" nic.n_name
              (nic.n_pid + 1) s)))
    fmt

let check_dest nic what d1 =
  if d1 < 1 then misuse nic "%s P%d: no such processor" what d1

(* Fold the filled bank in ascending slot order — a fixed combination
   order, so the emitted floats are independent of contribution
   arrival order (and of wire jitter entirely, since the fabric sits
   above the wire). *)
let combine_bank nic (b : bank) =
  let first =
    match b.b_vals.(0) with
    | Some v -> v
    | None -> misuse nic "aggregation bank emitted with empty slot 0"
  in
  let acc = Array.copy first in
  let f =
    match b.b_op with
    | Prog.A_sum -> ( +. )
    | Prog.A_prod -> ( *. )
    | Prog.A_min -> Float.min
    | Prog.A_max -> Float.max
  in
  for s = 1 to b.b_arity - 1 do
    match b.b_vals.(s) with
    | Some v ->
        for j = 0 to Array.length acc - 1 do
          acc.(j) <- f acc.(j) v.(j)
        done
    | None -> misuse nic "aggregation bank emitted with empty slot %d" s
  done;
  acc

(* The synthetic rendezvous name of a NIC-to-NIC forwarded payload:
   never matched by hosts (it only exists inside the fabric and in
   traces), and loud enough to diagnose a parent program that lets it
   fall through to the board. *)
let uplink_name nic = Printf.sprintf "nic:%s@P%d" nic.n_name (nic.n_pid + 1)

let rec offer t ~time ~src ~dst ~name ~payload =
  let nic =
    match t.f_nics.(dst) with
    | Some n -> n
    | None -> invalid_arg "Fabric.offer: destination has no NIC program"
  in
  let elems = Array.length payload in
  let wire = Costmodel.message_bytes t.f_cost ~elems in
  (* ingress hop onto the fabric + the program's static cost *)
  let t_arr =
    time +. t.f_cost.Costmodel.nic_alpha
    +. (t.f_cost.Costmodel.nic_beta *. float_of_int wire)
    +. nic.n_cost
  in
  t.f_bytes <- t.f_bytes + wire;
  t.f_packets <- t.f_packets + 1;
  let pkt =
    { k_src1 = src + 1; k_dst1 = dst + 1; k_elems = elems; k_bytes = wire }
  in
  let regs = nic.n_regs in
  let fire (ci : cinstr) =
    Array.iter (fun (r, e) -> regs.(r) <- e regs pkt) ci.ci_sets;
    match ci.ci_action with
    | C_pass ->
        t.f_post ~time:t_arr ~src ~name ~kind:Board.Value ~payload
          ~directed:(Some [ dst ])
    | C_drop ->
        t.f_filtered <- t.f_filtered + 1;
        Trace.emit t.f_tr
          (Trace.Nic_drop { time = t_arr; pid = dst; src; name })
    | C_redirect f ->
        let d1 = f regs pkt in
        check_dest nic "redirect to" d1;
        if d1 > t.f_nprocs then misuse nic "redirect to P%d: no such processor" d1;
        t.f_redirected <- t.f_redirected + 1;
        Trace.emit t.f_tr
          (Trace.Nic_redirect
             { time = t_arr; pid = dst; src; name; dest = d1 - 1 });
        (* the re-routed packet goes straight to the board: a redirect
           retargets delivery, it does not re-enter the fabric (which
           keeps dynamic targets out of the acyclicity obligation) *)
        t.f_post ~time:t_arr ~src ~name ~kind:Board.Value ~payload
          ~directed:(Some [ d1 - 1 ])
    | C_fanout fs ->
        let dests =
          Array.map
            (fun f ->
              let d1 = f regs pkt in
              check_dest nic "fan-out to" d1;
              if d1 > t.f_nprocs then
                misuse nic "fan-out to P%d: no such processor" d1;
              d1 - 1)
            fs
        in
        t.f_fanout_copies <- t.f_fanout_copies + Array.length dests;
        Trace.emit t.f_tr
          (Trace.Nic_fanout
             { time = t_arr; pid = dst; name; copies = Array.length dests });
        (* one upstream packet, k downstream board sends originating
           at the NIC (the host paid one send_init for all of them) *)
        t.f_post ~time:t_arr ~src:dst ~name ~kind:Board.Value ~payload
          ~directed:(Some (Array.to_list dests))
    | C_aggregate { bank; slot } -> (
        let s = slot regs pkt in
        if s < 0 || s >= bank.b_arity then
          misuse nic "aggregation slot %d out of range [0,%d)" s bank.b_arity;
        (match bank.b_vals.(s) with
        | None -> bank.b_filled <- bank.b_filled + 1
        | Some prev ->
            if Array.length prev <> elems then
              misuse nic
                "aggregation slot %d re-filled with %d elements (had %d)" s
                elems (Array.length prev));
        (match bank.b_vals.(0) with
        | Some v0 when Array.length v0 <> elems ->
            misuse nic
              "aggregation payload shape mismatch: slot %d has %d elements, \
               slot 0 has %d"
              s elems (Array.length v0)
        | _ -> ());
        bank.b_vals.(s) <- Some (Array.copy payload);
        bank.b_ready.(s) <- Float.max bank.b_ready.(s) t_arr;
        t.f_absorbed <- t.f_absorbed + 1;
        Trace.emit t.f_tr
          (Trace.Nic_absorb { time = t_arr; pid = dst; src; name; slot = s });
        if bank.b_filled = bank.b_arity then begin
          let combined = combine_bank nic bank in
          let t_emit = Array.fold_left Float.max 0.0 bank.b_ready in
          (* reset so the bank can run another round *)
          Array.fill bank.b_vals 0 bank.b_arity None;
          Array.fill bank.b_ready 0 bank.b_arity 0.0;
          bank.b_filled <- 0;
          t.f_emitted <- t.f_emitted + 1;
          let emit_name =
            match bank.b_emit with
            | Prog.To_host nm -> nm
            | Prog.To_nic _ -> uplink_name nic
          in
          Trace.emit t.f_tr
            (Trace.Nic_emit
               {
                 time = t_emit;
                 pid = dst;
                 name = emit_name;
                 parts = bank.b_arity;
               });
          match bank.b_emit with
          | Prog.To_host nm ->
              (* delivered to this NIC's own host through the normal
                 (possibly faulty) endpoint path *)
              t.f_post ~time:t_emit ~src:dst ~name:nm ~kind:Board.Value
                ~payload:combined ~directed:(Some [ dst ])
          | Prog.To_nic q1 ->
              (* one fabric hop up the tree; attach-time checks
                 guarantee the target NIC exists and the forwarding
                 graph is acyclic, so this recursion terminates *)
              offer t ~time:t_emit ~src:dst ~dst:(q1 - 1)
                ~name:(uplink_name nic) ~payload:combined
        end)
  in
  let n = Array.length nic.n_instrs in
  let rec go i =
    if i >= n then
      (* no guard matched: pass through *)
      t.f_post ~time:t_arr ~src ~name ~kind:Board.Value ~payload
        ~directed:(Some [ dst ])
    else
      let ci = Array.unsafe_get nic.n_instrs i in
      if ci.ci_guard regs pkt then fire ci else go (i + 1)
  in
  go 0

let packets t = t.f_packets
let filtered t = t.f_filtered
let redirected t = t.f_redirected
let absorbed t = t.f_absorbed
let emitted t = t.f_emitted
let fanout_copies t = t.f_fanout_copies
let fabric_bytes t = t.f_bytes

(* Endpoint messages saved by in-flight folding: every absorbed
   payload was a message that no longer reaches an endpoint; every
   emit re-materializes one. *)
let msgs_saved t = t.f_absorbed - t.f_emitted
