(** The programmable-NIC fabric: {!Prog} programs verified and staged
    into closures at attach time, run on every directed value packet
    addressed to a processor with a program attached.

    The fabric interposes {e above} the rendezvous board and the
    reliable transport: NIC state is driven only by the host
    program's posting order, never by wire-level retransmits or
    duplicates (those happen strictly below, on the messages the
    fabric chose to emit).  Together with slot-indexed aggregation
    banks combined in fixed slot order, this makes every NIC program
    idempotent under retransmit — faulty runs are bit-identical to
    fault-free ones.

    Every fabric hop costs [nic_alpha + nic_beta*bytes] plus the
    program's static per-packet cost [nic_op * (1 + instrs)]; fabric
    emissions re-enter the ordinary board/transport path (and pay
    full endpoint prices) from there. *)

(** Raised on dynamic program misbehaviour the attach-time verifier
    cannot rule out: a computed redirect/fan-out target outside
    [1..nprocs], an aggregation slot outside [0..arity), or
    contributions of mismatched shape.  Deterministic — a program
    that raises does so identically on both engines and under any
    fault plan. *)
exception Nic_misuse of string

type t

(** [create ~nprocs ~cost ~trace ~post specs] — verify and stage the
    given [(pid, program)] attachments ([pid] 0-based).  [post] is the
    executor's board-posting entry point; everything the fabric emits
    goes through it as a directed value send.

    Rejects (as [Error diagnostic]): any per-program {!Verify.check}
    failure, duplicate attachments, attachment outside the machine,
    forwarding ([To_nic]) to a processor with no program attached,
    and forwarding cycles — so a packet visits a statically bounded
    number of NICs. *)
val create :
  nprocs:int ->
  cost:Xdp_sim.Costmodel.t ->
  trace:Xdp_sim.Trace.t ->
  post:
    (time:float ->
    src:int ->
    name:string ->
    kind:Xdp_sim.Board.kind ->
    payload:float array ->
    directed:int list option ->
    unit) ->
  (int * Prog.t) list ->
  (t, string) result

(** Does processor [dst] (0-based) have a program attached?  Packets
    to other processors bypass the fabric entirely. *)
val handles : t -> int -> bool

(** [offer t ~time ~src ~dst ~name ~payload] — run [dst]'s program on
    a packet posted by [src] at [time].  Must only be called when
    [handles t dst].  The payload is copied before being stored in an
    aggregation bank, and the board copies per-destination on post,
    so callers may reuse the array. *)
val offer :
  t ->
  time:float ->
  src:int ->
  dst:int ->
  name:string ->
  payload:float array ->
  unit

(** {1 Counters} (cumulative over the run) *)

val packets : t -> int
(** packets that entered the fabric (incl. NIC-to-NIC forwards) *)

val filtered : t -> int
val redirected : t -> int

val absorbed : t -> int
(** payloads folded into aggregation banks *)

val emitted : t -> int
(** combined payloads emitted by full banks *)

val fanout_copies : t -> int

val fabric_bytes : t -> int
(** bytes carried on fabric hops *)

val msgs_saved : t -> int
(** endpoint messages saved by in-flight folding:
    [absorbed - emitted] *)
