(** Attach-time verification of NIC programs.

    Rejects programs that would be unbounded or ill-typed at the NIC:
    over-long programs, oversized expressions, scratch registers
    outside the bank, literal destinations outside the machine,
    constant division by zero, empty fan-outs, degenerate or
    oversized aggregations, emits without a rendezvous name.  A
    program that passes runs in statically bounded time per packet.

    Rejections are {e positioned}: [error_to_string] renders
    ["nic program 'rtree', instr 2: scratch register r19 out of range
    [0,16)"] — the program name and instruction index always
    identify the defect site.  (Acyclicity of [To_nic] forwarding is
    a whole-fabric property and is checked by {!Fabric.create}, which
    sees every attached program.) *)

type error = {
  prog : string;  (** program name *)
  instr : int option;  (** offending instruction index, if any *)
  what : string;
}

val error_to_string : error -> string

val max_exp_nodes : int
(** Node bound per expression (256). *)

val check : nprocs:int -> Prog.t -> (unit, error) result
