(** The NIC program IR: a tiny, statically verifiable fragment that
    runs on simulated packet arrival (ROADMAP's eBPF/XDP-style
    in-network compute).

    A program is a first-match-wins list of guarded instructions over
    a packet's integer header fields and a bounded per-NIC scratch
    register bank.  Expressions are straight-line integer arithmetic
    (the only conditional is the branchless [Sel]); there are no
    loops and no symbol-table access, so the per-packet cost is
    statically bounded and {!Verify.check} is decidable.  The firing
    instruction's action decides the packet's fate:

    - {b filter}: [Pass] / [Drop] / [Redirect] — the packet goes on
      to the rendezvous board, disappears, or is re-routed to a
      different destination;
    - {b aggregate}: the payload is folded into a per-instruction
      bank of contributor slots; when every slot is filled the
      combined payload is emitted (to the local host, or one hop up
      to another NIC — how [reduce] trees collapse partial sums
      in-flight);
    - {b multicast fan-out}: the packet is replicated to k
      destinations (one upstream packet, k downstream deliveries). *)

type field =
  | F_src  (** 1-based source processor *)
  | F_dst  (** 1-based destination processor (this NIC's host) *)
  | F_elems  (** payload length in elements *)
  | F_bytes  (** wire size in bytes (payload + header) *)

type binop = Add | Sub | Mul | Div | Mod | Min | Max
type cmp = Eq | Ne | Lt | Le | Gt | Ge

type exp =
  | Lit of int
  | Fld of field
  | Reg of int  (** scratch register, persistent across packets *)
  | Bin of binop * exp * exp
      (** [Div]/[Mod] by zero yield 0 (total, deterministic) *)
  | Sel of cond * exp * exp  (** branchless select: cond ? a : b *)

and cond =
  | True
  | Cmp of cmp * exp * exp
  | All of cond list
  | Any of cond list
  | Not of cond

type aggop = A_sum | A_prod | A_min | A_max

(** Where a full aggregation bank emits: [To_host name] delivers the
    combined payload to this NIC's host as a directed value send
    under the fixed rendezvous [name] (matched by an ordinary IL
    [recv]); [To_nic p] forwards it one fabric hop to processor [p]'s
    NIC.  [To_nic] targets are static pids so the fabric can check
    the forwarding graph for cycles at attach time. *)
type emit = To_host of string | To_nic of int

type action =
  | Pass
  | Drop
  | Redirect of exp  (** 1-based destination pid *)
  | Fanout of exp list  (** 1-based destination pids *)
  | Aggregate of { slot : exp; arity : int; op : aggop; emit : emit }

type instr = {
  guard : cond;
  sets : (int * exp) list;
      (** scratch updates, applied in order when the guard fires *)
  action : action;
}

type t = { name : string; instrs : instr list }
(** Instructions are scanned top-down; the first true guard applies
    its [sets] and its action, the rest are skipped.  No matching
    guard means [Pass]. *)

val max_regs : int
(** Scratch registers per NIC (16). *)

val max_instrs : int
(** Maximum program length (64). *)

(** {1 Builders} *)

val lit : int -> exp
val src : exp
val dst : exp
val elems : exp
val bytes : exp
val reg : int -> exp
val add : exp -> exp -> exp
val sub : exp -> exp -> exp
val mul : exp -> exp -> exp
val sel : cond -> exp -> exp -> exp
val eq : exp -> exp -> cond
val ne : exp -> exp -> cond
val lt : exp -> exp -> cond
val le : exp -> exp -> cond
val gt : exp -> exp -> cond
val ge : exp -> exp -> cond

val between : exp -> int -> int -> cond
(** [between x lo hi] — [lo <= x && x <= hi]. *)

val instr : ?sets:(int * exp) list -> cond -> action -> instr
val make : name:string -> instr list -> t

(** {1 Printing} *)

val field_name : field -> string
val binop_name : binop -> string
val cmp_name : cmp -> string
val aggop_name : aggop -> string
val exp_to_string : exp -> string
val cond_to_string : cond -> string
val action_to_string : action -> string
val instr_to_string : instr -> string
val to_string : t -> string

val forward_targets : t -> int list
(** The static [To_nic] targets (1-based) — the program's edges in
    the fabric's forwarding graph. *)
