(* Attach-time verification of NIC programs.

   The point of the restricted IR is that every obligation here is
   decidable by a single walk: bounded program length, bounded
   expression size, register indices inside the bank, literal
   destinations inside the machine, no constant division by zero,
   non-degenerate aggregations and fan-outs.  A program that passes
   cannot loop, cannot touch memory beyond its scratch bank, and has
   a per-packet cost bounded by its static size — the eBPF bargain.

   Every rejection is positioned: it names the program and, when the
   defect is inside an instruction, the instruction index (and the
   register/operand concerned), so `attach` failures read like
   compiler diagnostics, not asserts. *)

type error = { prog : string; instr : int option; what : string }

let error_to_string e =
  match e.instr with
  | None -> Printf.sprintf "nic program '%s': %s" e.prog e.what
  | Some k -> Printf.sprintf "nic program '%s', instr %d: %s" e.prog k e.what

exception Reject of error

let max_exp_nodes = 256

let check ~nprocs (p : Prog.t) =
  let fail ?instr fmt =
    Printf.ksprintf
      (fun what -> raise (Reject { prog = p.Prog.name; instr; what }))
      fmt
  in
  let check_pid ~instr what pid1 =
    if pid1 < 1 || pid1 > nprocs then
      fail ~instr "%s P%d outside the machine (1..%d)" what pid1 nprocs
  in
  (* One walk counts nodes, range-checks registers and literal
     destinations, and rejects constant zero divisors. *)
  let rec exp_nodes ~instr e =
    match e with
    | Prog.Lit _ | Prog.Fld _ -> 1
    | Prog.Reg r ->
        if r < 0 || r >= Prog.max_regs then
          fail ~instr "scratch register r%d out of range [0,%d)" r
            Prog.max_regs;
        1
    | Prog.Bin (((Div | Mod) as op), a, Prog.Lit 0) ->
        ignore (exp_nodes ~instr a);
        fail ~instr "%s by constant zero" (Prog.binop_name op)
    | Prog.Bin (_, a, b) ->
        1 + exp_nodes ~instr a + exp_nodes ~instr b
    | Prog.Sel (c, a, b) ->
        1 + cond_nodes ~instr c + exp_nodes ~instr a + exp_nodes ~instr b
  and cond_nodes ~instr c =
    match c with
    | Prog.True -> 1
    | Prog.Cmp (_, a, b) -> 1 + exp_nodes ~instr a + exp_nodes ~instr b
    | Prog.All cs | Prog.Any cs ->
        List.fold_left (fun n c -> n + cond_nodes ~instr c) 1 cs
    | Prog.Not c -> 1 + cond_nodes ~instr c
  in
  let bound ~instr what n =
    if n > max_exp_nodes then
      fail ~instr "%s has %d nodes (bound %d)" what n max_exp_nodes
  in
  try
    if p.Prog.name = "" then fail "program has no name";
    let len = List.length p.Prog.instrs in
    if len > Prog.max_instrs then
      fail "%d instructions (bound %d)" len Prog.max_instrs;
    List.iteri
      (fun instr (i : Prog.instr) ->
        bound ~instr "guard" (cond_nodes ~instr i.guard);
        List.iter
          (fun (r, e) ->
            if r < 0 || r >= Prog.max_regs then
              fail ~instr "scratch register r%d out of range [0,%d)" r
                Prog.max_regs;
            bound ~instr "register update" (exp_nodes ~instr e))
          i.sets;
        match i.action with
        | Prog.Pass | Prog.Drop -> ()
        | Prog.Redirect e -> (
            bound ~instr "redirect destination" (exp_nodes ~instr e);
            match e with
            | Prog.Lit d -> check_pid ~instr "redirect to" d
            | _ -> ())
        | Prog.Fanout [] -> fail ~instr "empty fan-out"
        | Prog.Fanout es when List.length es > nprocs ->
            fail ~instr "fan-out to %d destinations on a %d-processor machine"
              (List.length es) nprocs
        | Prog.Fanout es ->
            List.iter
              (fun e ->
                bound ~instr "fan-out destination" (exp_nodes ~instr e);
                match e with
                | Prog.Lit d -> check_pid ~instr "fan-out to" d
                | _ -> ())
              es
        | Prog.Aggregate { slot; arity; op = _; emit } -> (
            bound ~instr "aggregation slot" (exp_nodes ~instr slot);
            if arity < 1 then
              fail ~instr "aggregation arity %d (must be >= 1)" arity;
            if arity > nprocs + 1 then
              fail ~instr
                "aggregation arity %d exceeds contributors available \
                 (nprocs + 1 = %d)"
                arity (nprocs + 1);
            match emit with
            | Prog.To_host "" -> fail ~instr "emit to host with empty name"
            | Prog.To_host _ -> ()
            | Prog.To_nic q -> check_pid ~instr "emit forwarded to" q))
      p.Prog.instrs;
    Ok ()
  with Reject e -> Error e
