open Xdp.Build
module Space = Xdp_search.Space
module Dist = Xdp_dist.Dist
module Grid = Xdp_dist.Grid
module Tensor = Xdp_util.Tensor

let eta = 1.0 /. 1024.0
let in_val i j = float_of_int ((i + (2 * j)) mod 7)

let init name idx =
  match (name, idx) with
  | "IN", [ i; j ] -> in_val i j
  | _ ->
      (* weight arrays W<l> start at 1.0; scratch (incl. WC<l>) at 0 *)
      if
        String.length name >= 2
        && name.[0] = 'W'
        && name.[1] >= '0'
        && name.[1] <= '9'
      then 1.0
      else 0.0

(* ------------------------------------------------------------------ *)

let build (cfg : Space.config) (pl : Space.placement) =
  (match Space.validate cfg pl with
  | Ok () -> ()
  | Error e -> invalid_arg ("Dlstack.build: " ^ e));
  let p = cfg.procs
  and bsz = cfg.batch
  and d = cfg.dim
  and nl = cfg.nlayers in
  let dp = pl.dp and pp = pl.pp in
  let bpd = bsz / dp and bpp = bsz / p and ppd = p / dp in
  (* feature blocks exist only when a Col/Wshard spec forced dim|dp *)
  let dpd = if d mod dp = 0 then d / dp else 0 in
  let mesh = Grid.make [ pp; dp ] and machine = Grid.make [ p ] in
  let xn l = "X" ^ string_of_int l
  and cn l = "C" ^ string_of_int l
  and wn l = "W" ^ string_of_int l
  and wcn l = "WC" ^ string_of_int l
  and gpn l = "GP" ^ string_of_int l
  and grn l = "GR" ^ string_of_int l
  and gtn l = "GT" ^ string_of_int l
  and gbn l = "GB" ^ string_of_int l
  and gan l = "GA" ^ string_of_int l
  and gsn l = "GS" ^ string_of_int l in
  let spec l = pl.layers.(l - 1) in
  (* mesh coordinates: pid = stage * dp + peer, peers 1-based *)
  let c0 s = mypid -: i ((s * dp) + 1) in
  let cpeer s = c0 s +: i 1 in
  let in_stage s body =
    ((mypid >=: i ((s * dp) + 1)) &&: (mypid <=: i ((s + 1) * dp))) @: body
  in
  let pid_of s qv = i (s * dp) +: qv in
  let rows_of qv = slice (((qv -: i 1) *: i bpd) +: i 1) (qv *: i bpd) in
  let cols_of qv = slice (((qv -: i 1) *: i dpd) +: i 1) (qv *: i dpd) in
  let myrows s = rows_of (cpeer s) and mycols s = cols_of (cpeer s) in
  let rlo s = (c0 s *: i bpd) +: i 1 and rhi s = cpeer s *: i bpd in
  let clo s = (c0 s *: i dpd) +: i 1 and chi s = cpeer s *: i dpd in
  let mrows_of mv = slice (((mv -: i 1) *: i bpp) +: i 1) (mv *: i bpp) in
  let machine_rows = mrows_of mypid in
  let mlo = ((mypid -: i 1) *: i bpp) +: i 1 and mhi = mypid *: i bpp in
  let iv = var "ii" and jv = var "jj" and qv = var "q" in

  (* ---------------- declarations ---------------- *)
  let input_needed l =
    if l = 1 then not (Space.entry_elided cfg pl)
    else not (Space.transfer_elided ~src:(spec (l - 1)) ~dst:(spec l))
  in
  let vec3 name =
    decl ~name ~shape:[ pp; dp; d ]
      ~dist:[ Dist.Block; Dist.Block; Dist.Star ]
      ~grid:mesh ()
  in
  let quad4 name =
    decl ~name ~shape:[ pp; dp; dp; d ]
      ~dist:[ Dist.Block; Dist.Block; Dist.Star; Dist.Star ]
      ~grid:mesh ()
  in
  let act_decl name = function
    | Space.Row ->
        decl ~name ~shape:[ pp; bsz; d ]
          ~dist:[ Dist.Block; Dist.Block; Dist.Star ]
          ~grid:mesh ()
    | Space.Col ->
        decl ~name ~shape:[ pp; bsz; d ]
          ~dist:[ Dist.Block; Dist.Star; Dist.Block ]
          ~grid:mesh ()
    | Space.Repl ->
        decl ~name ~shape:[ pp; dp; bsz; d ]
          ~dist:[ Dist.Block; Dist.Block; Dist.Star; Dist.Star ]
          ~grid:mesh ()
  in
  let decls =
    ref
      [
        decl ~name:"OUT" ~shape:[ bsz; d ]
          ~dist:[ Dist.Block; Dist.Star ]
          ~grid:machine ();
        decl ~name:"IN" ~shape:[ bsz; d ]
          ~dist:[ Dist.Block; Dist.Star ]
          ~grid:machine ();
      ]
  in
  let push dl = decls := dl :: !decls in
  for l = 1 to nl do
    let sp = spec l in
    push (act_decl (xn l) sp.act);
    if input_needed l then push (act_decl (cn l) sp.act);
    (match sp.wgt with
    | Space.Wshard ->
        push
          (decl ~name:(wn l) ~shape:[ pp; d ]
             ~dist:[ Dist.Block; Dist.Block ]
             ~grid:mesh ())
    | Space.Wrepl -> push (vec3 (wn l)));
    if sp.wgt = Space.Wshard && sp.act <> Space.Col then push (vec3 (wcn l));
    push (vec3 (gpn l));
    if dp > 1 then
      match (sp.act, sp.wgt, sp.gsum) with
      | Space.Row, Space.Wrepl, Space.Tree ->
          (* rooted-tree scratch: partials and the total live on the
             stage root (a whole-extent block-cyclic dimension) *)
          push
            (decl ~name:(grn l) ~shape:[ pp; dp; d ]
               ~dist:[ Dist.Block; Dist.Block_cyclic dp; Dist.Star ]
               ~grid:mesh ());
          push
            (decl ~name:(gtn l) ~shape:[ pp; d ]
               ~dist:[ Dist.Block; Dist.Block_cyclic d ]
               ~grid:mesh ());
          push (vec3 (gbn l))
      | Space.Row, Space.Wrepl, Space.Allgather | Space.Col, Space.Wrepl, _
        ->
          push (quad4 (gan l))
      | Space.Row, Space.Wshard, _ -> push (quad4 (gsn l))
      | _ -> ()
  done;

  (* ---------------- statements ---------------- *)
  let stmts = ref [] in
  let emit s = stmts := s :: !stmts in

  (* entry: the machine-wide batch-sharded IN reaches layer 1's stage *)
  let l1 = spec 1 in
  let s1 = l1.stage in
  let slot1 = i (s1 + 1) in
  let entry_reader, entry_await =
    if Space.entry_elided cfg pl then
      ((fun iv jv -> elem "IN" [ iv; jv ]), None)
    else begin
      (match l1.act with
      | Space.Row ->
          emit
            (send_to
               (sec "IN" [ machine_rows; all ])
               [ i (s1 * dp) +: (((mypid -: i 1) /: i ppd) +: i 1) ])
      | Space.Col ->
          emit
            (loop "q" (i 1) (i dp)
               [
                 send_to
                   (sec "IN" [ machine_rows; cols_of qv ])
                   [ pid_of s1 qv ];
               ])
      | Space.Repl ->
          emit
            (loop "q" (i 1) (i dp)
               [ send_to (sec "IN" [ machine_rows; all ]) [ pid_of s1 qv ] ]));
      let c1 = cn 1 in
      let mv = var "m" in
      (match l1.act with
      | Space.Row ->
          emit
            (in_stage s1
               [
                 loop "m"
                   ((c0 s1 *: i ppd) +: i 1)
                   (cpeer s1 *: i ppd)
                   [
                     recv
                       ~into:(sec c1 [ at slot1; mrows_of mv; all ])
                       ~from:(sec "IN" [ mrows_of mv; all ]);
                   ];
               ])
      | Space.Col ->
          emit
            (in_stage s1
               [
                 loop "m" (i 1) (i p)
                   [
                     recv
                       ~into:(sec c1 [ at slot1; mrows_of mv; mycols s1 ])
                       ~from:(sec "IN" [ mrows_of mv; mycols s1 ]);
                   ];
               ])
      | Space.Repl ->
          emit
            (in_stage s1
               [
                 loop "m" (i 1) (i p)
                   [
                     recv
                       ~into:
                         (sec c1
                            [ at slot1; at (cpeer s1); mrows_of mv; all ])
                       ~from:(sec "IN" [ mrows_of mv; all ]);
                   ];
               ]));
      let aw =
        match l1.act with
        | Space.Row -> sec c1 [ at slot1; myrows s1; all ]
        | Space.Col -> sec c1 [ at slot1; all; mycols s1 ]
        | Space.Repl -> sec c1 [ at slot1; at (cpeer s1); all; all ]
      in
      let rd iv jv =
        match l1.act with
        | Space.Row | Space.Col -> elem c1 [ slot1; iv; jv ]
        | Space.Repl -> elem c1 [ slot1; cpeer s1; iv; jv ]
      in
      (rd, Some aw)
    end
  in

  for l = 1 to nl do
    let sp = spec l in
    let s = sp.stage in
    let slot = i (s + 1) in
    (* staged-in activations: reader + the await that gates compute *)
    let reader, c_await =
      if l = 1 then (entry_reader, entry_await)
      else begin
        let prev = spec (l - 1) in
        let spv = prev.stage in
        let slotp = i (spv + 1) in
        let xp = xn (l - 1) in
        if Space.transfer_elided ~src:prev ~dst:sp then
          let rd iv jv =
            match prev.act with
            | Space.Repl -> elem xp [ slotp; cpeer s; iv; jv ]
            | _ -> elem xp [ slotp; iv; jv ]
          in
          (rd, None)
        else begin
          let c = cn l in
          let sends, recvs =
            match (prev.act, sp.act) with
            | Space.Row, Space.Row ->
                ( [
                    send_to
                      (sec xp [ at slotp; myrows spv; all ])
                      [ pid_of s (cpeer spv) ];
                  ],
                  [
                    recv
                      ~into:(sec c [ at slot; myrows s; all ])
                      ~from:(sec xp [ at slotp; myrows s; all ]);
                  ] )
            | Space.Row, Space.Col ->
                ( [
                    loop "q" (i 1) (i dp)
                      [
                        send_to
                          (sec xp [ at slotp; myrows spv; cols_of qv ])
                          [ pid_of s qv ];
                      ];
                  ],
                  [
                    loop "q" (i 1) (i dp)
                      [
                        recv
                          ~into:(sec c [ at slot; rows_of qv; mycols s ])
                          ~from:(sec xp [ at slotp; rows_of qv; mycols s ]);
                      ];
                  ] )
            | Space.Row, Space.Repl ->
                ( [
                    loop "q" (i 1) (i dp)
                      [
                        send_to
                          (sec xp [ at slotp; myrows spv; all ])
                          [ pid_of s qv ];
                      ];
                  ],
                  [
                    loop "q" (i 1) (i dp)
                      [
                        recv
                          ~into:
                            (sec c
                               [ at slot; at (cpeer s); rows_of qv; all ])
                          ~from:(sec xp [ at slotp; rows_of qv; all ]);
                      ];
                  ] )
            | Space.Col, Space.Row ->
                ( [
                    loop "q" (i 1) (i dp)
                      [
                        send_to
                          (sec xp [ at slotp; rows_of qv; mycols spv ])
                          [ pid_of s qv ];
                      ];
                  ],
                  [
                    loop "q" (i 1) (i dp)
                      [
                        recv
                          ~into:(sec c [ at slot; myrows s; cols_of qv ])
                          ~from:(sec xp [ at slotp; myrows s; cols_of qv ]);
                      ];
                  ] )
            | Space.Col, Space.Col ->
                ( [
                    send_to
                      (sec xp [ at slotp; all; mycols spv ])
                      [ pid_of s (cpeer spv) ];
                  ],
                  [
                    recv
                      ~into:(sec c [ at slot; all; mycols s ])
                      ~from:(sec xp [ at slotp; all; mycols s ]);
                  ] )
            | Space.Col, Space.Repl ->
                ( [
                    loop "q" (i 1) (i dp)
                      [
                        send_to
                          (sec xp [ at slotp; all; mycols spv ])
                          [ pid_of s qv ];
                      ];
                  ],
                  [
                    loop "q" (i 1) (i dp)
                      [
                        recv
                          ~into:
                            (sec c
                               [ at slot; at (cpeer s); all; cols_of qv ])
                          ~from:(sec xp [ at slotp; all; cols_of qv ]);
                      ];
                  ] )
            | Space.Repl, Space.Row ->
                ( [
                    send_to
                      (sec xp [ at slotp; at (cpeer spv); myrows spv; all ])
                      [ pid_of s (cpeer spv) ];
                  ],
                  [
                    recv
                      ~into:(sec c [ at slot; myrows s; all ])
                      ~from:
                        (sec xp [ at slotp; at (cpeer s); myrows s; all ]);
                  ] )
            | Space.Repl, Space.Col ->
                ( [
                    send_to
                      (sec xp [ at slotp; at (cpeer spv); all; mycols spv ])
                      [ pid_of s (cpeer spv) ];
                  ],
                  [
                    recv
                      ~into:(sec c [ at slot; all; mycols s ])
                      ~from:
                        (sec xp [ at slotp; at (cpeer s); all; mycols s ]);
                  ] )
            | Space.Repl, Space.Repl ->
                ( [
                    send_to
                      (sec xp [ at slotp; at (cpeer spv); all; all ])
                      [ pid_of s (cpeer spv) ];
                  ],
                  [
                    recv
                      ~into:(sec c [ at slot; at (cpeer s); all; all ])
                      ~from:(sec xp [ at slotp; at (cpeer s); all; all ]);
                  ] )
          in
          emit (in_stage spv sends);
          emit (in_stage s recvs);
          let aw =
            match sp.act with
            | Space.Row -> sec c [ at slot; myrows s; all ]
            | Space.Col -> sec c [ at slot; all; mycols s ]
            | Space.Repl -> sec c [ at slot; at (cpeer s); all; all ]
          in
          let rd iv jv =
            match sp.act with
            | Space.Row | Space.Col -> elem c [ slot; iv; jv ]
            | Space.Repl -> elem c [ slot; cpeer s; iv; jv ]
          in
          (rd, Some aw)
        end
      end
    in

    (* sharded weights under a non-Col spec: allgather the blocks *)
    let wc_await =
      if not (sp.wgt = Space.Wshard && sp.act <> Space.Col) then None
      else begin
        let w = wn l and wc = wcn l in
        emit
          (in_stage s
             [
               loop "q" (i 1) (i dp)
                 [
                   if_
                     (qv <>: cpeer s)
                     [ send_to (sec w [ at slot; mycols s ]) [ pid_of s qv ] ]
                     [];
                 ];
               loop "q" (i 1) (i dp)
                 [
                   if_
                     (qv <>: cpeer s)
                     [
                       recv
                         ~into:(sec wc [ at slot; at (cpeer s); cols_of qv ])
                         ~from:(sec w [ at slot; cols_of qv ]);
                     ]
                     [];
                 ];
               loop "jj" (clo s) (chi s)
                 [ set wc [ slot; cpeer s; jv ] (elem w [ slot; jv ]) ];
             ]);
        Some (sec wc [ at slot; at (cpeer s); all ])
      end
    in

    (* forward: X_l = input * W_l + 1, under the staged-in awaits *)
    let welem jv =
      match (sp.wgt, sp.act) with
      | Space.Wrepl, _ -> elem (wn l) [ slot; cpeer s; jv ]
      | Space.Wshard, Space.Col -> elem (wn l) [ slot; jv ]
      | Space.Wshard, _ -> elem (wcn l) [ slot; cpeer s; jv ]
    in
    let cell = (reader iv jv *: welem jv) +: f 1.0 in
    let fwd =
      match sp.act with
      | Space.Row ->
          [
            loop "ii" (rlo s) (rhi s)
              [ loop "jj" (i 1) (i d) [ set (xn l) [ slot; iv; jv ] cell ] ];
          ]
      | Space.Col ->
          [
            loop "ii" (i 1) (i bsz)
              [
                loop "jj" (clo s) (chi s) [ set (xn l) [ slot; iv; jv ] cell ];
              ];
          ]
      | Space.Repl ->
          [
            loop "ii" (i 1) (i bsz)
              [
                loop "jj" (i 1) (i d)
                  [ set (xn l) [ slot; cpeer s; iv; jv ] cell ];
              ];
          ]
    in
    let fwd = match c_await with None -> fwd | Some aw -> [ await aw @: fwd ] in
    let fwd =
      match wc_await with None -> fwd | Some aw -> [ await aw @: fwd ]
    in
    emit (in_stage s fwd);

    (* gradient partial: column sums of the local activation block *)
    let x_read =
      match sp.act with
      | Space.Repl -> elem (xn l) [ slot; cpeer s; iv; jv ]
      | _ -> elem (xn l) [ slot; iv; jv ]
    in
    let accum ii_lo ii_hi =
      [
        setv "g" (f 0.0);
        loop "ii" ii_lo ii_hi [ setv "g" (var "g" +: x_read) ];
        set (gpn l) [ slot; cpeer s; jv ] (var "g");
      ]
    in
    let gpart =
      match sp.act with
      | Space.Row -> [ loop "jj" (i 1) (i d) (accum (rlo s) (rhi s)) ]
      | Space.Col -> [ loop "jj" (clo s) (chi s) (accum (i 1) (i bsz)) ]
      | Space.Repl -> [ loop "jj" (i 1) (i d) (accum (i 1) (i bsz)) ]
    in
    emit (in_stage s gpart);

    (* gradient allreduce + weight update *)
    let gp = gpn l in
    let w_add idx grad = set (wn l) idx (elem (wn l) idx +: (f eta *: grad)) in
    let upd =
      if dp = 1 then
        match sp.wgt with
        | Space.Wshard ->
            [
              loop "jj" (clo s) (chi s)
                [ w_add [ slot; jv ] (elem gp [ slot; cpeer s; jv ]) ];
            ]
        | Space.Wrepl ->
            [
              loop "jj" (i 1) (i d)
                [ w_add [ slot; cpeer s; jv ] (elem gp [ slot; cpeer s; jv ]) ];
            ]
      else
        match (sp.act, sp.wgt, sp.gsum) with
        | Space.Repl, Space.Wrepl, _ ->
            (* replicated partials are already total *)
            [
              loop "jj" (i 1) (i d)
                [ w_add [ slot; cpeer s; jv ] (elem gp [ slot; cpeer s; jv ]) ];
            ]
        | (Space.Repl | Space.Col), Space.Wshard, _ ->
            (* the owned feature block's partial is total *)
            [
              loop "jj" (clo s) (chi s)
                [ w_add [ slot; jv ] (elem gp [ slot; cpeer s; jv ]) ];
            ]
        | Space.Col, Space.Wrepl, _ ->
            (* disjoint feature blocks: allgather concatenates *)
            let ga = gan l in
            [
              loop "q" (i 1) (i dp)
                [
                  if_
                    (qv <>: cpeer s)
                    [
                      send_to
                        (sec gp [ at slot; at (cpeer s); mycols s ])
                        [ pid_of s qv ];
                    ]
                    [];
                ];
              loop "q" (i 1) (i dp)
                [
                  if_
                    (qv <>: cpeer s)
                    [
                      recv
                        ~into:
                          (sec ga [ at slot; at (cpeer s); at qv; cols_of qv ])
                        ~from:(sec gp [ at slot; at qv; cols_of qv ]);
                    ]
                    [];
                ];
              await (sec ga [ at slot; at (cpeer s); all; all ])
              @: [
                   loop "q" (i 1) (i dp)
                     [
                       if_
                         (qv =: cpeer s)
                         [
                           loop "jj"
                             (((qv -: i 1) *: i dpd) +: i 1)
                             (qv *: i dpd)
                             [
                               w_add [ slot; cpeer s; jv ]
                                 (elem gp [ slot; cpeer s; jv ]);
                             ];
                         ]
                         [
                           loop "jj"
                             (((qv -: i 1) *: i dpd) +: i 1)
                             (qv *: i dpd)
                             [
                               w_add [ slot; cpeer s; jv ]
                                 (elem ga [ slot; cpeer s; qv; jv ]);
                             ];
                         ];
                     ];
                 ];
            ]
        | Space.Row, Space.Wshard, _ ->
            (* reduce-scatter: every peer sums partials for its block *)
            let gs = gsn l in
            [
              loop "q" (i 1) (i dp)
                [
                  if_
                    (qv <>: cpeer s)
                    [
                      send_to
                        (sec gp [ at slot; at (cpeer s); cols_of qv ])
                        [ pid_of s qv ];
                    ]
                    [];
                ];
              loop "q" (i 1) (i dp)
                [
                  if_
                    (qv <>: cpeer s)
                    [
                      recv
                        ~into:
                          (sec gs [ at slot; at (cpeer s); at qv; mycols s ])
                        ~from:(sec gp [ at slot; at qv; mycols s ]);
                    ]
                    [];
                ];
              await (sec gs [ at slot; at (cpeer s); all; mycols s ])
              @: [
                   loop "jj" (clo s) (chi s)
                     [
                       setv "g" (elem gp [ slot; cpeer s; jv ]);
                       loop "q" (i 1) (i dp)
                         [
                           if_
                             (qv <>: cpeer s)
                             [
                               setv "g"
                                 (var "g" +: elem gs [ slot; cpeer s; qv; jv ]);
                             ]
                             [];
                         ];
                       w_add [ slot; jv ] (var "g");
                     ];
                 ];
            ]
        | Space.Row, Space.Wrepl, Space.Allgather ->
            (* symmetric: every peer folds every partial *)
            let ga = gan l in
            [
              loop "q" (i 1) (i dp)
                [
                  if_
                    (qv <>: cpeer s)
                    [
                      send_to
                        (sec gp [ at slot; at (cpeer s); all ])
                        [ pid_of s qv ];
                    ]
                    [];
                ];
              loop "q" (i 1) (i dp)
                [
                  if_
                    (qv <>: cpeer s)
                    [
                      recv
                        ~into:(sec ga [ at slot; at (cpeer s); at qv; all ])
                        ~from:(sec gp [ at slot; at qv; all ]);
                    ]
                    [];
                ];
              await (sec ga [ at slot; at (cpeer s); all; all ])
              @: [
                   loop "jj" (i 1) (i d)
                     [
                       setv "g" (elem gp [ slot; cpeer s; jv ]);
                       loop "q" (i 1) (i dp)
                         [
                           if_
                             (qv <>: cpeer s)
                             [
                               setv "g"
                                 (var "g" +: elem ga [ slot; cpeer s; qv; jv ]);
                             ]
                             [];
                         ];
                       w_add [ slot; cpeer s; jv ] (var "g");
                     ];
                 ];
            ]
        | Space.Row, Space.Wrepl, Space.Tree ->
            (* rooted tree: reduce to the stage root, broadcast back *)
            let gr = grn l and gt = gtn l and gb = gbn l in
            let root = (s * dp) + 1 in
            let is_root = mypid =: i root in
            [
              if_ is_root
                [
                  loop "q" (i 2) (i dp)
                    [
                      recv
                        ~into:(sec gr [ at slot; at qv; all ])
                        ~from:(sec gp [ at slot; at qv; all ]);
                    ];
                ]
                [
                  send_to (sec gp [ at slot; at (cpeer s); all ]) [ i root ];
                  recv
                    ~into:(sec gb [ at slot; at (cpeer s); all ])
                    ~from:(sec gt [ at slot; all ]);
                ];
              if_ is_root
                [
                  await (sec gr [ at slot; slice (i 2) (i dp); all ])
                  @: [
                       loop "jj" (i 1) (i d)
                         [
                           setv "g" (elem gp [ slot; i 1; jv ]);
                           loop "q" (i 2) (i dp)
                             [ setv "g" (var "g" +: elem gr [ slot; qv; jv ]) ];
                           set gt [ slot; jv ] (var "g");
                         ];
                       loop "q" (i 2) (i dp)
                         [ send_to (sec gt [ at slot; all ]) [ pid_of s qv ] ];
                       loop "jj" (i 1) (i d)
                         [ w_add [ slot; i 1; jv ] (elem gt [ slot; jv ]) ];
                     ];
                ]
                [
                  await (sec gb [ at slot; at (cpeer s); all ])
                  @: [
                       loop "jj" (i 1) (i d)
                         [
                           w_add [ slot; cpeer s; jv ]
                             (elem gb [ slot; cpeer s; jv ]);
                         ];
                     ];
                ];
            ]
    in
    emit (in_stage s upd)
  done;

  (* exit: the last layer's activations land in the machine-wide OUT *)
  let ll = spec nl in
  let sl = ll.stage in
  let slotl = i (sl + 1) in
  let xl = xn nl in
  if Space.exit_elided cfg pl then (
    match ll.act with
    | Space.Row ->
        emit
          (loop "ii" mlo mhi
             [
               loop "jj" (i 1) (i d)
                 [ set "OUT" [ iv; jv ] (elem xl [ slotl; iv; jv ]) ];
             ])
    | Space.Repl ->
        emit
          (loop "ii" mlo mhi
             [
               loop "jj" (i 1) (i d)
                 [ set "OUT" [ iv; jv ] (elem xl [ slotl; mypid; iv; jv ]) ];
             ])
    | Space.Col -> assert false (* exit_elided never holds for Col *))
  else begin
    let mv = var "m" in
    (match ll.act with
    | Space.Row ->
        emit
          (in_stage sl
             [
               loop "m"
                 ((c0 sl *: i ppd) +: i 1)
                 (cpeer sl *: i ppd)
                 [ send_to (sec xl [ at slotl; mrows_of mv; all ]) [ mv ] ];
             ]);
        emit
          (recv
             ~into:(sec "OUT" [ machine_rows; all ])
             ~from:(sec xl [ at slotl; machine_rows; all ]))
    | Space.Col ->
        emit
          (in_stage sl
             [
               loop "m" (i 1) (i p)
                 [
                   send_to
                     (sec xl [ at slotl; mrows_of mv; mycols sl ])
                     [ mv ];
                 ];
             ]);
        emit
          (loop "q" (i 1) (i dp)
             [
               recv
                 ~into:(sec "OUT" [ machine_rows; cols_of qv ])
                 ~from:(sec xl [ at slotl; machine_rows; cols_of qv ]);
             ])
    | Space.Repl ->
        (* replica c serves machine processors congruent to c mod dp *)
        let kv = var "k" in
        let dest = ((kv -: i 1) *: i dp) +: cpeer sl in
        emit
          (in_stage sl
             [
               loop "k" (i 1) (i ppd)
                 [
                   send_to
                     (sec xl [ at slotl; at (cpeer sl); mrows_of dest; all ])
                     [ dest ];
                 ];
             ]);
        emit
          (recv
             ~into:(sec "OUT" [ machine_rows; all ])
             ~from:
               (sec xl
                  [
                    at slotl;
                    at (((mypid -: i 1) %: i dp) +: i 1);
                    machine_rows;
                    all;
                  ])));
    emit (await (sec "OUT" [ machine_rows; all ]) @: [])
  end;
  program
    ~name:("dlstack-" ^ Space.key pl)
    ~decls:(List.rev !decls) (List.rev !stmts)

(* ------------------------------------------------------------------ *)
(* Analytic values: X_l = IN + l exactly, so the layer-l gradient is
   S(j) + batch*l with S(j) the column sum of IN, and every quantity
   is an exact dyadic. *)

let reference (cfg : Space.config) =
  Tensor.init [ cfg.batch; cfg.dim ] (function
    | [ i; j ] -> in_val i j +. float_of_int cfg.nlayers
    | _ -> assert false)

let grad_total (cfg : Space.config) l j =
  let s = ref 0.0 in
  for ii = 1 to cfg.batch do
    s := !s +. in_val ii j
  done;
  !s +. float_of_int (cfg.batch * l)

let expected_weights (cfg : Space.config) (pl : Space.placement) l =
  if l < 1 || l > cfg.nlayers then
    invalid_arg "Dlstack.expected_weights: layer out of range";
  let sp = pl.layers.(l - 1) in
  let slot = sp.stage + 1 in
  let wexp j = 1.0 +. (eta *. grad_total cfg l j) in
  match sp.wgt with
  | Space.Wshard ->
      Tensor.init [ pl.pp; cfg.dim ] (function
        | [ s; j ] -> if s = slot then wexp j else 1.0
        | _ -> assert false)
  | Space.Wrepl ->
      Tensor.init [ pl.pp; pl.dp; cfg.dim ] (function
        | [ s; _; j ] -> if s = slot then wexp j else 1.0
        | _ -> assert false)

let check (cfg : Space.config) (pl : Space.placement) arrays =
  let check_one name want k =
    let got = arrays name in
    if Tensor.equal ~eps:0.0 got want then k ()
    else Error (name ^ " diverges from the analytic value")
  in
  let rec layers l =
    if l > cfg.nlayers then Ok ()
    else
      check_one
        ("W" ^ string_of_int l)
        (expected_weights cfg pl l)
        (fun () -> layers (l + 1))
  in
  check_one "OUT" (reference cfg) (fun () -> layers 1)
