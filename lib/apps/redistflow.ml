open Xdp.Ir

let layout_before ~n ~m ~nprocs =
  Xdp_dist.Layout.make ~shape:[ m; n; n ]
    ~dist:[ Xdp_dist.Dist.Star; Xdp_dist.Dist.Star; Xdp_dist.Dist.Block ]
    ~grid:(Xdp_dist.Grid.linear nprocs)

let layout_after ~n ~m ~nprocs =
  Xdp_dist.Layout.make ~shape:[ m; n; n ]
    ~dist:[ Xdp_dist.Dist.Star; Xdp_dist.Dist.Block; Xdp_dist.Dist.Star ]
    ~grid:(Xdp_dist.Grid.linear nprocs)

let check ~n ~nprocs ~m =
  if nprocs < 1 then invalid_arg "Redistflow: nprocs < 1";
  if m < 1 then invalid_arg "Redistflow: m < 1";
  if n mod nprocs <> 0 then
    invalid_arg "Redistflow: nprocs must divide n"

let decls ~n ~nprocs ~m =
  let b = n / nprocs in
  [
    {
      arr_name = "A";
      layout = layout_before ~n ~m ~nprocs;
      (* one segment per outgoing piece: the planner's stage slices
         are whole segments, so [`Segment] granularity coincides with
         the pairwise pieces *)
      seg_shape = [ m; b; b ];
      universal = false;
    };
  ]

let build_info ~n ~nprocs ?(m = 2) ?(strategy = `Naive) ?params () =
  check ~n ~nprocs ~m;
  let decls = decls ~n ~nprocs ~m in
  let body, info =
    Xdp.Redistribute.gen_info ~decls ~array:"A"
      ~new_layout:(layout_after ~n ~m ~nprocs)
      ~strategy ?params ()
  in
  (Xdp.Build.program ~name:"redistflow" ~decls body, info)

let build ~n ~nprocs ?m ?strategy ?params () =
  fst (build_info ~n ~nprocs ?m ?strategy ?params ())

(* Distinct, exactly-representable value per index. *)
let init name idx =
  match (name, idx) with
  | "A", [ i; j; k ] -> float_of_int ((((i * 4096) + j) * 4096) + k)
  | _ -> 0.0

let reference ~n ?(m = 2) () =
  Xdp_util.Tensor.init [ m; n; n ] (fun idx -> init "A" idx)
