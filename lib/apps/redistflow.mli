(** The fft3d redistribution, isolated: a thin [( *, *, BLOCK)] →
    [( *, BLOCK, * )] ownership-transfer all-to-all at scale.

    [A] is [m × n × n] ([m] small — the working slab of the 3-D FFT's
    corner-turn), starting column-blocked over a linear array of
    [nprocs] processors and redistributed to row-blocked, exactly the
    paper's §4 Loop 3 — but with the compute loops stripped so the
    communication pattern itself is the workload.  Every processor
    exchanges one [m × n/P × n/P] piece with every other processor:
    the P² all-to-all whose naive lowering blows per-processor peak
    in-flight bytes at large P, and the flagship workload for the
    {!Xdp.Plan_redist} collective planner.

    Redistribution preserves global contents, so the expected final
    tensor is just {!init} applied to the full index box — used for
    bit-identity checks between strategies, engines and fault plans. *)

open Xdp.Ir

val layout_before : n:int -> m:int -> nprocs:int -> Xdp_dist.Layout.t
val layout_after : n:int -> m:int -> nprocs:int -> Xdp_dist.Layout.t

(** [build ~n ~nprocs ()].  Requires [nprocs >= 1] and [n] a multiple
    of [nprocs]; [m] (default 2) is the slab depth.  [strategy]
    (default [`Naive]) and [params] pass through to
    {!Xdp.Redistribute.gen_info}. *)
val build :
  n:int ->
  nprocs:int ->
  ?m:int ->
  ?strategy:Xdp.Plan_redist.strategy ->
  ?params:Xdp.Plan_redist.params ->
  unit ->
  program

(** Like {!build}, also returning the planner's report ([None] under
    [`Naive]) — stage counts feed [Exec.run ?redist_stages]. *)
val build_info :
  n:int ->
  nprocs:int ->
  ?m:int ->
  ?strategy:Xdp.Plan_redist.strategy ->
  ?params:Xdp.Plan_redist.params ->
  unit ->
  program * Xdp.Plan_redist.info option

(** Deterministic per-element seed values (distinct per index). *)
val init : string -> int list -> float

(** The expected final contents of [A] (redistribution moves
    ownership, never values). *)
val reference : n:int -> ?m:int -> unit -> Xdp_util.Tensor.t
