open Xdp.Ir
open Xdp.Build

type stage = Sequential | Naive | Partial | Nic of int

let stage_name = function
  | Sequential -> "sequential"
  | Naive -> "naive"
  | Partial -> "partial-sums"
  | Nic _ -> "nic"

let grid nprocs = Xdp_dist.Grid.linear nprocs

(* all elements on P1: one CYCLIC(n) block *)
let on_p1 name extent nprocs =
  {
    arr_name = name;
    layout =
      Xdp_dist.Layout.make ~shape:[ extent ]
        ~dist:[ Xdp_dist.Dist.Block_cyclic extent ]
        ~grid:(grid nprocs);
    seg_shape = [ 1 ];
    universal = false;
  }

let per_proc name nprocs =
  decl ~name ~shape:[ nprocs ] ~dist:[ Xdp_dist.Dist.Block ]
    ~grid:(grid nprocs) ~seg_shape:[ 1 ] ()

let base_decls ~n ~nprocs =
  [
    decl ~name:"A" ~shape:[ n ] ~dist:[ Xdp_dist.Dist.Block ]
      ~grid:(grid nprocs) ();
    per_proc "OUT" nprocs;
  ]

let sequential ~n ~nprocs =
  let iv = var "i" in
  program ~name:"reduce" ~decls:(base_decls ~n ~nprocs)
    [
      setv "s" (f 0.0);
      loop "i" (i 1) (i n) [ setv "s" (var "s" +: elem "A" [ iv ]) ];
      set "OUT" [ mypid ] (var "s");
    ]

let partial ~n ~nprocs =
  let decls =
    base_decls ~n ~nprocs
    @ [
        per_proc "PART" nprocs;
        on_p1 "G" nprocs nprocs;
        on_p1 "TOT" 1 nprocs;
        per_proc "T2" nprocs;
      ]
  in
  let iv = var "i" and qv = var "q" in
  let a_all = sec "A" [ all ] in
  let body =
    [
      (* local partial sum over exactly the owned block, via the
         paper's mylb/myub intrinsics *)
      setv "part" (f 0.0);
      loop "i" (mylb a_all 1) (myub a_all 1)
        [ setv "part" (var "part" +: elem "A" [ iv ]) ];
      set "PART" [ mypid ] (var "part");
      (* everyone but P1 contributes one directed message *)
      (mypid >: i 1) @: [ send_to (sec "PART" [ at mypid ]) [ i 1 ] ];
      (* P1 gathers, combines, and broadcasts the total *)
      (mypid =: i 1)
      @: [
           set "G" [ i 1 ] (elem "PART" [ i 1 ]);
           loop "q" (i 2) (i nprocs)
             [
               recv ~into:(sec "G" [ at qv ]) ~from:(sec "PART" [ at qv ]);
             ];
           await (sec "G" [ slice (i 2) (i nprocs) ])
           @: [
                setv "acc" (f 0.0);
                loop "q" (i 1) (i nprocs)
                  [ setv "acc" (var "acc" +: elem "G" [ qv ]) ];
                set "TOT" [ i 1 ] (var "acc");
                send_to (sec "TOT" [ at (i 1) ])
                  (List.init nprocs (fun p -> i (p + 1)));
              ];
         ];
      recv ~into:(sec "T2" [ at mypid ]) ~from:(sec "TOT" [ at (i 1) ]);
      await (sec "T2" [ at mypid ])
      @: [ set "OUT" [ mypid ] (elem "T2" [ mypid ]) ];
    ]
  in
  program ~name:"reduce-partial" ~decls body

(* ------------------------------------------------------------------ *)
(* In-network reduction: the host side.

   Every processor computes its local partial and hands it to its own
   NIC with a single self-directed send; the verified NIC programs of
   {!nic_spec} collapse the partials up a k-ary tree entirely
   in-fabric and deliver the total to P1's host under the fixed
   rendezvous name {!nic_emit_name}.  P1 hands the total straight
   back to its NIC, which multicasts it to every processor in one
   fan-out.  Endpoint-delivered messages: [P + 1] (P fan-out copies
   plus the root's total), against [2P - 1] for [Partial]. *)

let nic_emit_name = "RED" ^ Xdp_util.Box.to_string (Xdp_util.Box.point [ 1 ])

let in_network ~n ~nprocs =
  let decls =
    base_decls ~n ~nprocs
    @ [
        per_proc "PART" nprocs;
        on_p1 "RED" 1 nprocs;
        on_p1 "TOT" 1 nprocs;
        per_proc "T2" nprocs;
      ]
  in
  let iv = var "i" in
  let a_all = sec "A" [ all ] in
  let body =
    [
      setv "part" (f 0.0);
      loop "i" (mylb a_all 1) (myub a_all 1)
        [ setv "part" (var "part" +: elem "A" [ iv ]) ];
      set "PART" [ mypid ] (var "part");
      (* hand the partial to my own NIC: a self-directed send the
         attached program absorbs into its aggregation bank *)
      send_to (sec "PART" [ at mypid ]) [ mypid ];
      (* the root host is the only endpoint the up-sweep touches: it
         receives the fabric's combined total... *)
      (mypid =: i 1)
      @: [
           recv ~into:(sec "TOT" [ at (i 1) ]) ~from:(sec "RED" [ at (i 1) ]);
           await (sec "TOT" [ at (i 1) ])
           @: [
                (* ...and hands it straight back to its NIC, which
                   fans it out to every processor in one shot *)
                send_to (sec "TOT" [ at (i 1) ]) [ i 1 ];
              ];
         ];
      recv ~into:(sec "T2" [ at mypid ]) ~from:(sec "TOT" [ at (i 1) ]);
      await (sec "T2" [ at mypid ])
      @: [ set "OUT" [ mypid ] (elem "T2" [ mypid ]) ];
    ]
  in
  program ~name:"reduce-nic" ~decls body

(* The per-processor NIC programs of the k-ary aggregation tree
   (0-based pids; children of [p] are [a*p+1 .. a*p+a]).  Each NIC
   folds its own host's partial (slot 0) and its children's subtree
   sums (slots 1..c, keyed off the packet's source field with a
   branchless select) and forwards the combined payload one fabric
   hop up; the root emits to its host instead, and multicasts the
   total on the way back down.  The root's scratch register r0
   distinguishes its host's two self-directed sends: the first (the
   partial) finds r0 = 0 and is aggregated, setting r0 = 1; the
   second (the received total) fires the fan-out. *)
let nic_spec ~nprocs ~arity =
  if arity < 2 then invalid_arg "Reduce.nic_spec: arity < 2";
  if nprocs < 2 then []
  else
    List.init nprocs (fun p ->
        let open Xdp_nic.Prog in
        let me1 = p + 1 in
        let lo = (arity * p) + 1 in
        let hi = min ((arity * p) + arity) (nprocs - 1) in
        let nchildren = if lo > nprocs - 1 then 0 else hi - lo + 1 in
        (* child q (0-based) arrives with src = q+1: slot = q+1-lo *)
        let slot =
          if nchildren = 0 then lit 0
          else sel (eq src (lit me1)) (lit 0) (sub src (lit lo))
        in
        let agg emit =
          Aggregate { slot; arity = nchildren + 1; op = A_sum; emit }
        in
        if p = 0 then
          ( p,
            make ~name:"reduce-tree-root"
              [
                instr
                  (All [ eq src (lit me1); eq (reg 0) (lit 1) ])
                  (Fanout (List.init nprocs (fun q -> lit (q + 1))));
                instr
                  ~sets:[ (0, sel (eq src (lit me1)) (lit 1) (reg 0)) ]
                  True
                  (agg (To_host nic_emit_name));
              ] )
        else
          ( p,
            make
              ~name:(Printf.sprintf "reduce-tree-up%d" me1)
              [ instr True (agg (To_nic (((p - 1) / arity) + 1))) ] ))

let build ~n ~nprocs ~stage () =
  match stage with
  | Sequential -> sequential ~n ~nprocs
  | Naive -> Xdp.Lower.run ~nprocs (sequential ~n ~nprocs)
  | Partial ->
      if nprocs < 2 then sequential ~n ~nprocs else partial ~n ~nprocs
  | Nic _ ->
      if nprocs < 2 then sequential ~n ~nprocs else in_network ~n ~nprocs

let init name idx =
  match (name, idx) with
  | "A", [ i ] -> float_of_int i +. 0.5
  | _ -> 0.0

let expected_sum ~n = (float_of_int (n * (n + 1)) /. 2.0) +. (0.5 *. float_of_int n)
