(** The DL-sharding workload family: a pipeline-parallel stack of
    elementwise layers with a data-parallel allreduce training step,
    elaborated from a GSPMD-style {!Xdp_search.Space.placement} to
    ordinary IL+XDP over {!Xdp_dist} layouts.

    The workload (config [B = batch], [D = dim], [L = nlayers]):

    {v
    X_0 = IN                          (machine-wide, batch-sharded)
    X_l[i,j] = X_{l-1}[i,j] * W_l[j] + 1        l = 1..L  (forward)
    G_l[j]   = sum_i X_l[i,j]                   (column-sum gradient)
    W_l[j]  += eta * G_l[j],  eta = 1/1024      (update)
    OUT      = X_L                    (machine-wide, batch-sharded)
    v}

    Inputs are small integers and weights start at 1.0, so every
    intermediate is integer-exact in floating point: [X_l = IN + l]
    bit-identically under {e any} placement, engine, cost model or
    summation order, and the updated weights are exact dyadics —
    which is what lets the differential suite demand bit-identity
    across the whole placement space.

    Communication follows {!Xdp_search.Space}'s case analysis
    verbatim (the estimator and this elaborator share the elision
    predicates, and the exactness test pins estimated messages/bytes
    to executed [Stats]).  All sends are directed; peers post sends
    before receives and receives before awaits, so elaborated
    programs are deadlock-free by construction. *)

open Xdp_search

(** Array naming: [IN]/[OUT] machine-wide; per layer [l] (1-based):
    activations [X<l>], staged-in copies [C<l>], weights [W<l>], and
    the allgather/gradient scratch arrays [WC<l>], [GP<l>], [GR<l>],
    [GT<l>], [GB<l>], [GA<l>], [GS<l>] — only the ones the layer's
    spec actually needs are declared.
    @raise Invalid_argument when {!Space.validate} rejects. *)
val build : Space.config -> Space.placement -> Xdp.Ir.program

(** [IN] is [(i + 2j) mod 7], weights start at 1.0, scratch at 0. *)
val init : string -> int list -> float

val in_val : int -> int -> float

val eta : float

(** The analytic [OUT]: [IN + nlayers]. *)
val reference : Space.config -> Xdp_util.Tensor.t

(** The analytic updated weight tensor of layer [l] (1-based), shaped
    like the placement's [W<l>] declaration; slots of stages the
    layer does not occupy keep their initial 1.0. *)
val expected_weights : Space.config -> Space.placement -> int -> Xdp_util.Tensor.t

(** Check a finished run: [OUT] and every layer's weights against the
    analytic values, bit-exactly.  [arrays] is the gathered-tensor
    getter (pass [Exec.array r]). *)
val check :
  Space.config ->
  Space.placement ->
  (string -> Xdp_util.Tensor.t) ->
  (unit, string) result
