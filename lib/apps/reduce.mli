(** Global reduction: [s = sum(A)], every processor ending with the
    result in its own (universal) copy of [s].

    Two data-movement strategies:

    - [Naive]: the owner-computes lowering of the sequential
      accumulation loop — each iteration broadcasts one element to
      every processor ([n * P] messages), the worst case of implicit
      placement;
    - [Partial]: hand-written IL+XDP using the paper's [mylb]/[myub]
      intrinsics — each processor reduces its own block locally, sends
      one partial to P1 (directed), P1 combines and broadcasts the
      total back ([2P - 1] messages);
    - [Nic arity]: in-network reduction — each processor hands its
      partial to its own NIC with one self-directed send; the
      verified NIC programs of {!nic_spec} fold the partials up a
      k-ary tree entirely in-fabric, the root's host receives the
      total once and its NIC multicasts it back down ([P + 1]
      endpoint messages).  Run it with
      [Exec.run ~nic:(nic_spec ~nprocs ~arity)].

    All leave the result replicated in [OUT[mypid]] on every
    processor, verified against the closed-form sum. *)

open Xdp.Ir

type stage = Sequential | Naive | Partial | Nic of int

val stage_name : stage -> string

(** [build ~n ~nprocs ~stage ()].  [Nic]'s host program is
    arity-independent (the tree shape lives in the NIC programs);
    [Partial] and [Nic] fall back to [Sequential] when [nprocs < 2]. *)
val build : n:int -> nprocs:int -> stage:stage -> unit -> program

(** The per-processor NIC programs of the [Nic] stage's k-ary
    aggregation tree ([(0-based pid, program)]; empty when
    [nprocs < 2], matching [build]'s sequential fallback).
    @raise Invalid_argument when [arity < 2]. *)
val nic_spec : nprocs:int -> arity:int -> (int * Xdp_nic.Prog.t) list

(** The rendezvous name under which the root NIC delivers the
    combined total to P1's host ("RED[1]"). *)
val nic_emit_name : string

val init : string -> int list -> float

(** The expected reduction value under {!init}. *)
val expected_sum : n:int -> float
