(** The rendezvous board: name-matched message transport.

    XDP sends carry the {e name} of a section (the paper's footnote 2:
    the name is the tag that associates a send with a receive) and may
    leave the destination unspecified; receives name the section they
    expect.  The board matches them FIFO on (name, kind):

    - an {e undirected} send matches the earliest pending receive of
      that name anywhere (this is what lets several idle processors
      race to receive work in the §2.7 load-balancing pattern);
    - a {e directed} send ([E -> S]) matches only receives posted by
      the named destinations (one message per destination);
    - a receive matches the earliest eligible send.

    Matching a send and a receive of different kinds (value vs
    ownership) is the paper's "incorrect usage"; the board raises
    {!Mismatch} instead of producing unpredictable results, since the
    compiler is required to generate matching pairs.

    A matched pair becomes a {e delivery} with arrival time
    [max(send_time + alpha + beta*bytes, recv_time)]; deliveries are
    consumed by the executor in (arrival, sequence) order, which keeps
    simulation deterministic.

    Complexity: matchmaking is amortized O(1) per operation
    (destination-indexed FIFO queues with lazy deletion) and the
    delivery queue is a binary min-heap keyed on [(arrival, seq)], so
    posting and popping are O(log n) in the number of in-flight
    messages. See DESIGN.md "Run-time structure complexity" for the
    invariants; {!Board_reference} preserves the original linear-scan
    implementation as the executable specification. *)

type kind = Value | Owner | Owner_value

exception Mismatch of string

type delivery = {
  arrival : float;
  depart : float;    (** send departure time (post time plus NIC queueing) *)
  seq : int;         (** global tie-break sequence *)
  src : int;
  dst : int;
  name : string;
  kind : kind;
  payload : float array;  (** packed section values; empty for [Owner] *)
  bytes : int;
  token : int;       (** the receiver's token from [post_recv] *)
}

type t

val create : Costmodel.t -> t

(** [post_send t ~time ~src ~name ~kind ~payload ~directed] — initiate
    a send.  [directed = None] leaves the destination unspecified;
    [Some pids] sends one message to each listed destination
    (broadcast/multicast). @raise Invalid_argument on [Some []]. *)
val post_send :
  t ->
  time:float ->
  src:int ->
  name:string ->
  kind:kind ->
  payload:float array ->
  directed:int list option ->
  unit

(** [post_recv t ~time ~dst ~name ~kind ~token] — initiate a receive.
    [token] is echoed back in the delivery so the caller can find its
    pending-receive record. *)
val post_recv :
  t -> time:float -> dst:int -> name:string -> kind:kind -> token:int -> unit

(** Whether any delivery is waiting — allocation-free, for the
    executor's inner loop. *)
val has_delivery : t -> bool

(** Earliest delivery not yet consumed, if any. *)
val peek_delivery : t -> delivery option

val pop_delivery : t -> delivery option

(** Are there sends/receives still waiting for a partner?  (Program
    end with leftovers means the compiler emitted unmatched
    operations; reported in run statistics.) *)
val pending_sends : t -> (string * kind * int) list

val pending_recvs : t -> (string * kind * int) list

(** Cumulative transport statistics. *)
val messages_matched : t -> int

val bytes_matched : t -> int

(** Per-processor peak in-flight bytes seen so far.  A message's wire
    bytes occupy its source from [post_send], its destination from the
    moment it is matched into a delivery, and both until the delivery
    is popped.  Indexed by pid; the array covers the highest pid seen
    (callers pad to the machine size).  Under the fault-injecting
    transport the window is the board-resident part only, but the
    accounting stays deterministic and engine-independent. *)
val peak_inflight : t -> int array

val kind_to_string : kind -> string
