let render ~nprocs ~makespan ?(width = 72) events =
  if makespan <= 0.0 then "(empty trace)"
  else
    let buckets = Array.make_matrix nprocs width ' ' in
    let bucket t =
      min (width - 1) (max 0 (int_of_float (t /. makespan *. float_of_int width)))
    in
    (* Mark blocked intervals: Blocked..Unblocked pairs per pid. *)
    let block_start = Array.make nprocs None in
    let mark pid a b ch =
      for x = bucket a to bucket b do
        if buckets.(pid).(x) = ' ' || buckets.(pid).(x) = '#' then
          buckets.(pid).(x) <- ch
      done
    in
    let last_seen = Array.make nprocs 0.0 in
    (* Retransmit spans: from the first resend headed at a processor to
       the delivery that finally lands there, its lane shows 'r' — the
       window in which the transport was recovering a lost message. *)
    let rexmit_start = Array.make nprocs None in
    List.iter
      (fun (e : Trace.event) ->
        match e with
        | Trace.Blocked { time; pid; _ } -> block_start.(pid) <- Some time
        | Trace.Unblocked { time; pid } -> (
            match block_start.(pid) with
            | Some t0 ->
                mark pid t0 time '.';
                block_start.(pid) <- None;
                last_seen.(pid) <- time
            | None -> ())
        | Trace.Send_init { time; pid; _ } | Trace.Recv_init { time; pid; _ }
          ->
            mark pid last_seen.(pid) time '#';
            last_seen.(pid) <- time
        | Trace.Delivered { time; dst; _ } ->
            (match rexmit_start.(dst) with
            | Some t0 ->
                for x = bucket t0 to bucket time do
                  if buckets.(dst).(x) = ' ' || buckets.(dst).(x) = '.' then
                    buckets.(dst).(x) <- 'r'
                done;
                rexmit_start.(dst) <- None
            | None -> ());
            buckets.(dst).(bucket time) <- 'v'
        | Trace.Dropped { time; src; _ } ->
            buckets.(src).(bucket time) <- 'x'
        | Trace.Retransmit { time; dst; _ } ->
            if rexmit_start.(dst) = None then rexmit_start.(dst) <- Some time
        | Trace.Ack _ | Trace.Duped _ -> ()
        (* NIC fabric activity shows on the lane of the processor the
           NIC serves; 'a' marks in-flight aggregation (absorb/emit),
           'f' a multicast fan-out, '!' a filtered packet. *)
        | Trace.Nic_absorb { time; pid; _ } | Trace.Nic_emit { time; pid; _ }
          ->
            if buckets.(pid).(bucket time) = ' ' then
              buckets.(pid).(bucket time) <- 'a'
        | Trace.Nic_fanout { time; pid; _ } ->
            buckets.(pid).(bucket time) <- 'f'
        | Trace.Nic_drop { time; pid; _ }
        | Trace.Nic_redirect { time; pid; _ } ->
            buckets.(pid).(bucket time) <- '!'
        | Trace.Note { time; pid; _ } -> last_seen.(pid) <- time)
      events;
    let buf = Buffer.create ((nprocs + 2) * (width + 8)) in
    Buffer.add_string buf
      (Printf.sprintf "t=0 %s t=%.0f\n" (String.make (width - 8) ' ')
         makespan);
    for pid = 0 to nprocs - 1 do
      Buffer.add_string buf (Printf.sprintf "P%-2d |" (pid + 1));
      Array.iter (Buffer.add_char buf) buckets.(pid);
      Buffer.add_string buf "|\n"
    done;
    Buffer.add_string buf
      "     ('#' busy  '.' blocked  'v' delivery  'x' drop  'r' retransmit \
       window  'a' nic-aggregate  'f' nic-fanout  '!' nic-filter)\n";
    Buffer.contents buf
