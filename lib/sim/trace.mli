(** Execution traces and run statistics.

    A trace records the observable events of a simulated run in
    timestamp order (useful for the Figure 1 conformance scenarios and
    for debugging optimizations); the statistics summarize what the
    experiment tables report: messages, bytes, simulated makespan,
    per-processor busy/idle split, guard evaluations and ownership
    transfers. *)

type event =
  | Send_init of { time : float; pid : int; name : string; kind : string }
  | Recv_init of { time : float; pid : int; name : string; kind : string }
  | Delivered of {
      time : float;
      src : int;
      dst : int;
      name : string;
      kind : string;
      bytes : int;
    }
  | Blocked of { time : float; pid : int; on : string }
  | Unblocked of { time : float; pid : int }
  | Note of { time : float; pid : int; msg : string }
  | Dropped of {
      time : float;
      src : int;
      dst : int;
      name : string;
      attempt : int;
      what : string;  (** ["data"] or ["ack"] *)
    }  (** the fault plan dropped a packet on the wire *)
  | Retransmit of {
      time : float;
      src : int;
      dst : int;
      name : string;
      attempt : int;
    }  (** sender timed out waiting for an ack and resent *)
  | Ack of { time : float; src : int; dst : int; name : string }
      (** receiver acknowledged; [src]/[dst] are the {e data} endpoints *)
  | Duped of { time : float; src : int; dst : int; name : string }
      (** receiver suppressed a duplicate by sequence-number dedup *)
  | Nic_drop of { time : float; pid : int; src : int; name : string }
      (** a NIC program filtered the packet out *)
  | Nic_redirect of {
      time : float;
      pid : int;
      src : int;
      name : string;
      dest : int;
    }  (** a NIC program re-routed the packet to [dest] *)
  | Nic_absorb of {
      time : float;
      pid : int;
      src : int;
      name : string;
      slot : int;
    }  (** payload folded into an in-network aggregation bank *)
  | Nic_emit of { time : float; pid : int; name : string; parts : int }
      (** a full aggregation bank emitted its combined payload *)
  | Nic_fanout of { time : float; pid : int; name : string; copies : int }
      (** one upstream packet replicated to [copies] destinations *)

type t

(** [create ~enabled] — when disabled, [emit] is a no-op (statistics
    are always collected by the executor, independently). *)
val create : enabled:bool -> t

val enabled : t -> bool
val emit : t -> event -> unit

(** Events in emission order. *)
val events : t -> event list

val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> t -> unit

(** {1 Run statistics} *)

type stats = {
  makespan : float;        (** max processor finish time *)
  messages : int;
  bytes : int;
  ownership_transfers : int;
  guard_evals : int;
  guard_hits : int;        (** guards that evaluated true *)
  busy : float array;      (** per-pid time spent computing/initiating *)
  finish : float array;    (** per-pid finish time *)
  peak_storage : int array;(** per-pid peak local elements allocated *)
  statements : int;        (** interpreter steps executed *)
  unmatched_sends : int;
  unmatched_recvs : int;
  retransmits : int;       (** transport-layer resends after timeout *)
  acks : int;              (** acknowledgements put on the wire *)
  dup_suppressed : int;    (** duplicate deliveries deduplicated at the receiver *)
  packets_dropped : int;   (** data + ack packets the fault plan dropped *)
  net_overhead_bytes : int;(** retransmitted payload + ack bytes, beyond [bytes] *)
  link_failures : int;     (** messages abandoned after max retries *)
  nic_packets : int;       (** packets processed by attached NIC programs *)
  nic_filtered : int;      (** packets a NIC program dropped *)
  nic_aggregated : int;    (** payloads folded into aggregation banks *)
  nic_emitted : int;       (** combined payloads emitted by full banks *)
  nic_fanout_copies : int; (** copies produced by multicast fan-out *)
  nic_msgs_saved : int;    (** endpoint messages saved by in-flight folding *)
  nic_bytes : int;         (** bytes carried on NIC fabric hops *)
  peak_inflight_bytes : int array;
      (** per-pid peak bytes simultaneously in flight on the board
          (charged to the source from send post, to the destination
          from match, until delivery consumption) *)
  redist_stages : int;
      (** stages the redistribution planner scheduled (0 = no planned
          redistribution in this program) *)
}

(** Max over processors of [peak_inflight_bytes]. *)
val max_peak_inflight : stats -> int

(** Idle fraction: 1 - sum(busy)/(nprocs * makespan). *)
val idle_fraction : stats -> float

val pp_stats : Format.formatter -> stats -> unit
