(** Machine cost models for the simulated SPMD target.

    XDP deliberately delays the binding of communication primitives to
    transfer operations until code generation (§3.2): the same IL+XDP
    program can target a message-passing machine or a shared-address
    machine (KSR1-style prefetch/poststore).  We model that delayed
    binding by running one program against different cost models.

    All times are in abstract {e cycles}; one flop = 1.0 under the
    default presets.  Network transfer of a [b]-byte message costs
    [alpha + beta*b] from send initiation to availability at the
    receiver (the classic postal model). *)

type t = {
  name : string;
  time_flop : float;       (** one floating-point operation *)
  time_int_op : float;     (** one integer/index operation *)
  time_mem : float;        (** one local element load or store *)
  time_guard : float;      (** base cost of evaluating a compute rule *)
  time_desc : float;       (** per segment descriptor visited by an intrinsic *)
  time_send_init : float;  (** software overhead to initiate a send *)
  time_recv_init : float;  (** software overhead to initiate a receive *)
  alpha : float;           (** per-message network latency *)
  beta : float;            (** per-byte network cost *)
  elem_bytes : int;        (** bytes per array element *)
  header_bytes : int;      (** per-message envelope (the transferred "name") *)
  time_owner_admin : float;(** symbol-table update per ownership transfer *)
  nic_serialize : bool;
      (** when true, each processor's network interface injects one
          message at a time: a message occupies the sender's NIC for
          [beta * bytes] cycles before the [alpha] flight latency, so
          bursts of sends queue behind each other (the common 1993
          reality; off in the default presets for the simpler postal
          model) *)
  nic_alpha : float;
      (** per-hop latency of the programmable NIC fabric ([lib/nic]):
          host-to-NIC ingress and NIC-to-NIC forwarding both pay
          [nic_alpha + nic_beta*bytes] — the distinct, much cheaper
          alpha/beta of NIC-originated traffic *)
  nic_beta : float;  (** per-byte cost of a fabric hop *)
  nic_op : float;
      (** per-instruction cost of running a verified NIC program on a
          packet (per-packet program cost ≪ endpoint compute) *)
}

(** 1993-era distributed-memory multicomputer: expensive message
    startup (alpha/flop = 2000), moderate bandwidth. *)
val message_passing : t

(** Shared-address machine with prefetch/poststore binding: small
    initiation and latency costs, same compute costs. *)
val shared_address : t

(** Zero-cost communication; isolates pure compute time. *)
val idealized : t

(** [message_passing] hosts with an in-network-compute-grade fabric:
    NIC hops and per-packet program cost an order of magnitude below
    the default preset's.  The preset for asking how far in-network
    reduction can go when the fabric, not the endpoint, is the fast
    path. *)
val nic_compute : t

(** {1 Batched charging}

    The staged executor ({!Xdp_runtime.Precompile}) accumulates the
    chargeable operations of a straight-line region into a [tally] at
    compile time and charges {!tally_cost} once per execution.  The
    built-in per-op times are dyadic rationals, so the batched multiply
    is bit-identical to charging each operation individually. *)

type tally = { n_int_ops : int; n_mems : int; n_guards : int }

val tally_zero : tally
val tally_int_op : tally
val tally_mem : tally
val tally_guard : tally
val tally_add : tally -> tally -> tally
val tally_is_zero : tally -> bool

(** [tally_cost cm t] — total cycles of the tallied operations under
    cost model [cm]. *)
val tally_cost : t -> tally -> float

(** [with_network t ~alpha ~beta] — preset with overridden network
    parameters (used by the alpha/beta sweep of experiment T4). *)
val with_network : t -> alpha:float -> beta:float -> t

(** Same machine with a serializing NIC. *)
val serialized : t -> t

(** [message_bytes t ~elems] — wire size of a message carrying
    [elems] elements (payload + header). *)
val message_bytes : t -> elems:int -> int

(** [transfer_time t ~bytes] — [alpha + beta*bytes]. *)
val transfer_time : t -> bytes:int -> float

val pp : Format.formatter -> t -> unit
