(* The original sorted-list / linear-scan rendezvous board, preserved
   verbatim as the executable specification of {!Board}'s semantics.
   Differential tests drive both implementations with identical
   operation sequences and require identical deliveries and pending
   sets; the micro-benchmark harness measures {!Board}'s speedup
   against it. O(n) insertion and matching — do not use in the
   executor. *)

type kind = Board.kind = Value | Owner | Owner_value

exception Mismatch of string

let kind_to_string = function
  | Value -> "value"
  | Owner -> "ownership"
  | Owner_value -> "ownership+value"

type delivery = Board.delivery = {
  arrival : float;
  depart : float;
  seq : int;
  src : int;
  dst : int;
  name : string;
  kind : kind;
  payload : float array;
  bytes : int;
  token : int;
}

type send = {
  s_seq : int;
  s_time : float; (* departure time: initiation, plus NIC queueing *)
  s_src : int;
  s_kind : kind;
  s_payload : float array;
  s_dst : int option; (* None = unspecified destination *)
}

type recv = {
  r_seq : int;
  r_time : float;
  r_dst : int;
  r_kind : kind;
  r_token : int;
}

type t = {
  cost : Costmodel.t;
  sends : (string, send list ref) Hashtbl.t; (* pending, ascending seq *)
  recvs : (string, recv list ref) Hashtbl.t;
  mutable deliveries : delivery list; (* sorted by (arrival, seq) *)
  mutable seq : int;
  mutable matched : int;
  mutable bytes : int;
  nic_free : (int, float) Hashtbl.t; (* per-src NIC availability *)
  (* In-flight occupancy, mirroring Board exactly: charged to the
     source at post, to the destination at match, released at pop. *)
  mutable occ : int array;
  mutable occ_peak : int array;
}

let create cost =
  {
    cost;
    sends = Hashtbl.create 64;
    recvs = Hashtbl.create 64;
    deliveries = [];
    seq = 0;
    matched = 0;
    bytes = 0;
    nic_free = Hashtbl.create 16;
    occ = [||];
    occ_peak = [||];
  }

let occ_add t pid bytes =
  let n = Array.length t.occ in
  if pid >= n then begin
    let n' = max (pid + 1) (max 16 (2 * n)) in
    let grow a =
      let b = Array.make n' 0 in
      Array.blit a 0 b 0 n;
      b
    in
    t.occ <- grow t.occ;
    t.occ_peak <- grow t.occ_peak
  end;
  let v = t.occ.(pid) + bytes in
  t.occ.(pid) <- v;
  if v > t.occ_peak.(pid) then t.occ_peak.(pid) <- v

let occ_sub t pid bytes =
  if pid < Array.length t.occ then t.occ.(pid) <- t.occ.(pid) - bytes

let send_bytes (cost : Costmodel.t) ~kind ~payload ~dst =
  let header =
    match dst with Some _ -> 0 | None -> cost.Costmodel.header_bytes
  in
  let p =
    if kind = Owner then 0
    else Array.length payload * cost.Costmodel.elem_bytes
  in
  p + header

let next_seq t =
  let s = t.seq in
  t.seq <- s + 1;
  s

let queue tbl name =
  match Hashtbl.find_opt tbl name with
  | Some q -> q
  | None ->
      let q = ref [] in
      Hashtbl.add tbl name q;
      q

let check_kind name expected actual =
  if expected <> actual then
    raise
      (Mismatch
         (Printf.sprintf
            "section %s: %s send matched against %s receive (compiler must \
             generate matching pairs)"
            name (kind_to_string expected) (kind_to_string actual)))

let insert_delivery t d =
  let rec ins = function
    | [] -> [ d ]
    | x :: rest ->
        if (d.arrival, d.seq) < (x.arrival, x.seq) then d :: x :: rest
        else x :: ins rest
  in
  t.deliveries <- ins t.deliveries

let make_delivery t ~name (s : send) (r : recv) =
  check_kind name s.s_kind r.r_kind;
  let elems = Array.length s.s_payload in
  (* Directed sends were bound at compile time, so the name tag need
     not travel (paper, footnote 2): no header on the wire. *)
  let header =
    match s.s_dst with
    | Some _ -> 0
    | None -> t.cost.Costmodel.header_bytes
  in
  let payload = if s.s_kind = Owner then 0 else elems * t.cost.Costmodel.elem_bytes in
  let bytes = payload + header in
  let arrival =
    Float.max (s.s_time +. Costmodel.transfer_time t.cost ~bytes) r.r_time
  in
  t.matched <- t.matched + 1;
  t.bytes <- t.bytes + bytes;
  occ_add t r.r_dst bytes;
  insert_delivery t
    {
      arrival;
      depart = s.s_time;
      seq = next_seq t;
      src = s.s_src;
      dst = r.r_dst;
      name;
      kind = s.s_kind;
      payload = s.s_payload;
      bytes;
      token = r.r_token;
    }

let post_one_send t ~time ~src ~name ~kind ~payload ~dst =
  (* With a serializing NIC the message departs only when the sender's
     interface is free, and occupies it for its transmission time. *)
  let depart =
    if not t.cost.Costmodel.nic_serialize then time
    else begin
      let payload_bytes =
        if kind = Owner then 0
        else Array.length payload * t.cost.Costmodel.elem_bytes
      in
      let free =
        Option.value (Hashtbl.find_opt t.nic_free src) ~default:0.0
      in
      let start = Float.max time free in
      Hashtbl.replace t.nic_free src
        (start +. (t.cost.Costmodel.beta *. float_of_int payload_bytes));
      start
    end
  in
  let s =
    { s_seq = next_seq t; s_time = depart; s_src = src; s_kind = kind;
      s_payload = payload; s_dst = dst }
  in
  occ_add t src (send_bytes t.cost ~kind ~payload ~dst);
  let rq = queue t.recvs name in
  (* Earliest pending receive eligible for this send. *)
  let eligible r =
    match dst with None -> true | Some d -> r.r_dst = d
  in
  match List.find_opt eligible !rq with
  | Some r ->
      rq := List.filter (fun x -> x.r_seq <> r.r_seq) !rq;
      make_delivery t ~name s r
  | None ->
      let sq = queue t.sends name in
      sq := !sq @ [ s ]

let post_send t ~time ~src ~name ~kind ~payload ~directed =
  match directed with
  | None -> post_one_send t ~time ~src ~name ~kind ~payload ~dst:None
  | Some [] -> invalid_arg "Board.post_send: empty destination set"
  | Some dsts ->
      List.iter
        (fun d ->
          post_one_send t ~time ~src ~name ~kind
            ~payload:(Array.copy payload) ~dst:(Some d))
        dsts

let post_recv t ~time ~dst ~name ~kind ~token =
  let r =
    { r_seq = next_seq t; r_time = time; r_dst = dst; r_kind = kind;
      r_token = token }
  in
  let sq = queue t.sends name in
  let eligible s = match s.s_dst with None -> true | Some d -> d = dst in
  match List.find_opt eligible !sq with
  | Some s ->
      sq := List.filter (fun x -> x.s_seq <> s.s_seq) !sq;
      make_delivery t ~name s r
  | None ->
      let rq = queue t.recvs name in
      rq := !rq @ [ r ]

let peek_delivery t =
  match t.deliveries with [] -> None | d :: _ -> Some d

let pop_delivery t =
  match t.deliveries with
  | [] -> None
  | d :: rest ->
      t.deliveries <- rest;
      occ_sub t d.src d.bytes;
      occ_sub t d.dst d.bytes;
      Some d

let pending_of tbl extract =
  Hashtbl.fold
    (fun name q acc -> List.map (extract name) !q @ acc)
    tbl []
  |> List.sort compare

let pending_sends t =
  pending_of t.sends (fun name s -> (name, s.s_kind, s.s_src))

let pending_recvs t =
  pending_of t.recvs (fun name r -> (name, r.r_kind, r.r_dst))

let messages_matched t = t.matched
let bytes_matched t = t.bytes
let peak_inflight t = Array.copy t.occ_peak
