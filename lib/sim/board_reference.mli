(** The original sorted-list rendezvous board, kept as the executable
    specification of {!Board}'s matching semantics.

    Same interface and behaviour as {!Board} (the types are shared, so
    deliveries compare structurally), but with the seed's O(n)
    sorted-list delivery insertion and linear pending-queue scans.
    Used only by the differential tests ([test_board_scale]) and the
    micro-benchmark baseline ([bench/micro.ml]); the executor always
    uses {!Board}. *)

type kind = Board.kind = Value | Owner | Owner_value

exception Mismatch of string

type delivery = Board.delivery = {
  arrival : float;
  depart : float;
  seq : int;
  src : int;
  dst : int;
  name : string;
  kind : kind;
  payload : float array;
  bytes : int;
  token : int;
}

type t

val create : Costmodel.t -> t

val post_send :
  t ->
  time:float ->
  src:int ->
  name:string ->
  kind:kind ->
  payload:float array ->
  directed:int list option ->
  unit

val post_recv :
  t -> time:float -> dst:int -> name:string -> kind:kind -> token:int -> unit

val peek_delivery : t -> delivery option
val pop_delivery : t -> delivery option
val pending_sends : t -> (string * kind * int) list
val pending_recvs : t -> (string * kind * int) list
val messages_matched : t -> int
val bytes_matched : t -> int
val peak_inflight : t -> int array
val kind_to_string : kind -> string
