module Heap = Xdp_util.Heap

type kind = Value | Owner | Owner_value

exception Mismatch of string

let kind_to_string = function
  | Value -> "value"
  | Owner -> "ownership"
  | Owner_value -> "ownership+value"

type delivery = {
  arrival : float;
  depart : float;
  seq : int;
  src : int;
  dst : int;
  name : string;
  kind : kind;
  payload : float array;
  bytes : int;
  token : int;
}

type send = {
  s_seq : int;
  s_time : float; (* departure time: initiation, plus NIC queueing *)
  s_src : int;
  s_kind : kind;
  s_payload : float array;
  s_dst : int option; (* None = unspecified destination *)
}

type recv = {
  r_seq : int;
  r_time : float;
  r_dst : int;
  r_kind : kind;
  r_token : int;
}

(* Pending sends for one name. A send is directed to at most one
   destination (broadcasts are expanded before posting), so it lives
   in exactly one FIFO: [s_any] for undirected sends, [s_to.(dst)] for
   directed ones. A receive by [dst] considers only the two queue
   fronts — the earliest undirected send and the earliest send
   directed at [dst] — and takes the lower [s_seq]: amortized O(1)
   where the seed scanned the whole pending list. *)
type send_q = {
  s_any : send Queue.t;
  s_to : (int, send Queue.t) Hashtbl.t;
}

(* Pending receives for one name. An undirected send matches the
   earliest receive of the name anywhere; a directed send matches the
   earliest receive by its destination. Each receive is therefore
   enqueued in both [r_all] and [r_by.(dst)], and removal from one
   index marks the [r_seq] in [r_gone] so the stale copy is discarded
   lazily when it surfaces at the other front (each receive is marked
   once and skipped once — amortized O(1)). *)
type recv_q = {
  r_all : recv Queue.t;
  r_by : (int, recv Queue.t) Hashtbl.t;
  r_gone : (int, unit) Hashtbl.t;
}

type t = {
  cost : Costmodel.t;
  sends : (string, send_q) Hashtbl.t;
  recvs : (string, recv_q) Hashtbl.t;
  deliveries : delivery Heap.t; (* min-heap on (arrival, seq) *)
  mutable seq : int;
  mutable matched : int;
  mutable bytes : int;
  nic_free : (int, float) Hashtbl.t; (* per-src NIC availability *)
  (* Per-processor in-flight byte occupancy: a message's wire bytes
     are charged to the source when the send is posted, to the
     destination when it is matched into a delivery, and released from
     both when the delivery is popped.  Indexed by pid, grown on
     demand (the board does not know the machine size). *)
  mutable occ : int array;
  mutable occ_peak : int array;
}

let cmp_delivery a b =
  let c = Float.compare a.arrival b.arrival in
  if c <> 0 then c else Int.compare a.seq b.seq

let create cost =
  {
    cost;
    sends = Hashtbl.create 64;
    recvs = Hashtbl.create 64;
    deliveries = Heap.create ~cmp:cmp_delivery ();
    seq = 0;
    matched = 0;
    bytes = 0;
    nic_free = Hashtbl.create 16;
    occ = [||];
    occ_peak = [||];
  }

let occ_add t pid bytes =
  let n = Array.length t.occ in
  if pid >= n then begin
    let n' = max (pid + 1) (max 16 (2 * n)) in
    let grow a =
      let b = Array.make n' 0 in
      Array.blit a 0 b 0 n;
      b
    in
    t.occ <- grow t.occ;
    t.occ_peak <- grow t.occ_peak
  end;
  let v = t.occ.(pid) + bytes in
  t.occ.(pid) <- v;
  if v > t.occ_peak.(pid) then t.occ_peak.(pid) <- v

let occ_sub t pid bytes =
  if pid < Array.length t.occ then t.occ.(pid) <- t.occ.(pid) - bytes

(* Wire bytes of a send, known at post time: the destination decides
   the header (footnote 2) and the kind decides the payload — the
   same formula [make_delivery] uses. *)
let send_bytes (cost : Costmodel.t) ~kind ~payload ~dst =
  let header =
    match dst with Some _ -> 0 | None -> cost.Costmodel.header_bytes
  in
  let p =
    if kind = Owner then 0
    else Array.length payload * cost.Costmodel.elem_bytes
  in
  p + header

let next_seq t =
  let s = t.seq in
  t.seq <- s + 1;
  s

let send_queue t name =
  match Hashtbl.find_opt t.sends name with
  | Some q -> q
  | None ->
      let q = { s_any = Queue.create (); s_to = Hashtbl.create 4 } in
      Hashtbl.add t.sends name q;
      q

let recv_queue t name =
  match Hashtbl.find_opt t.recvs name with
  | Some q -> q
  | None ->
      let q =
        {
          r_all = Queue.create ();
          r_by = Hashtbl.create 4;
          r_gone = Hashtbl.create 4;
        }
      in
      Hashtbl.add t.recvs name q;
      q


let sub_queue tbl key =
  match Hashtbl.find_opt tbl key with
  | Some q -> q
  | None ->
      let q = Queue.create () in
      Hashtbl.add tbl key q;
      q

(* Drop receives already consumed through the other index, then peek. *)
let rec live_front rq q =
  match Queue.peek_opt q with
  | Some r when Hashtbl.mem rq.r_gone r.r_seq ->
      ignore (Queue.pop q);
      Hashtbl.remove rq.r_gone r.r_seq;
      live_front rq q
  | front -> front

(* Earliest pending receive eligible for a send with destination
   [dst]; removes it from the queues. *)
let take_recv rq ~dst =
  let take q =
    match live_front rq q with
    | None -> None
    | Some r ->
        ignore (Queue.pop q);
        Hashtbl.add rq.r_gone r.r_seq ();
        Some r
  in
  match dst with
  | None -> take rq.r_all
  | Some d -> (
      match Hashtbl.find_opt rq.r_by d with
      | None -> None
      | Some q -> take q)

let push_recv rq r =
  Queue.push r rq.r_all;
  Queue.push r (sub_queue rq.r_by r.r_dst)

(* Earliest pending send eligible for a receive by [dst]: the lower
   [s_seq] of the undirected front and the front directed at [dst]. *)
let take_send sq ~dst =
  let directed = Hashtbl.find_opt sq.s_to dst in
  let front q = Queue.peek_opt q in
  match (front sq.s_any, Option.bind directed front) with
  | None, None -> None
  | Some _, None -> Some (Queue.pop sq.s_any)
  | None, Some _ -> Some (Queue.pop (Option.get directed))
  | Some a, Some d ->
      if a.s_seq < d.s_seq then Some (Queue.pop sq.s_any)
      else Some (Queue.pop (Option.get directed))

let check_kind name expected actual =
  if expected <> actual then
    raise
      (Mismatch
         (Printf.sprintf
            "section %s: %s send matched against %s receive (compiler must \
             generate matching pairs)"
            name (kind_to_string expected) (kind_to_string actual)))

let insert_delivery t d = Heap.push t.deliveries d

let make_delivery t ~name (s : send) (r : recv) =
  check_kind name s.s_kind r.r_kind;
  let elems = Array.length s.s_payload in
  (* Directed sends were bound at compile time, so the name tag need
     not travel (paper, footnote 2): no header on the wire. *)
  let header =
    match s.s_dst with
    | Some _ -> 0
    | None -> t.cost.Costmodel.header_bytes
  in
  let payload = if s.s_kind = Owner then 0 else elems * t.cost.Costmodel.elem_bytes in
  let bytes = payload + header in
  let arrival =
    Float.max (s.s_time +. Costmodel.transfer_time t.cost ~bytes) r.r_time
  in
  t.matched <- t.matched + 1;
  t.bytes <- t.bytes + bytes;
  occ_add t r.r_dst bytes;
  insert_delivery t
    {
      arrival;
      depart = s.s_time;
      seq = next_seq t;
      src = s.s_src;
      dst = r.r_dst;
      name;
      kind = s.s_kind;
      payload = s.s_payload;
      bytes;
      token = r.r_token;
    }

let post_one_send t ~time ~src ~name ~kind ~payload ~dst =
  (* With a serializing NIC the message departs only when the sender's
     interface is free, and occupies it for its transmission time. *)
  let depart =
    if not t.cost.Costmodel.nic_serialize then time
    else begin
      let payload_bytes =
        if kind = Owner then 0
        else Array.length payload * t.cost.Costmodel.elem_bytes
      in
      let free =
        Option.value (Hashtbl.find_opt t.nic_free src) ~default:0.0
      in
      let start = Float.max time free in
      Hashtbl.replace t.nic_free src
        (start +. (t.cost.Costmodel.beta *. float_of_int payload_bytes));
      start
    end
  in
  let s =
    { s_seq = next_seq t; s_time = depart; s_src = src; s_kind = kind;
      s_payload = payload; s_dst = dst }
  in
  occ_add t src (send_bytes t.cost ~kind ~payload ~dst);
  let rq = recv_queue t name in
  match take_recv rq ~dst with
  | Some r -> make_delivery t ~name s r
  | None ->
      let sq = send_queue t name in
      (match dst with
      | None -> Queue.push s sq.s_any
      | Some d -> Queue.push s (sub_queue sq.s_to d))

let post_send t ~time ~src ~name ~kind ~payload ~directed =
  match directed with
  | None -> post_one_send t ~time ~src ~name ~kind ~payload ~dst:None
  | Some [] -> invalid_arg "Board.post_send: empty destination set"
  | Some dsts ->
      List.iter
        (fun d ->
          post_one_send t ~time ~src ~name ~kind
            ~payload:(Array.copy payload) ~dst:(Some d))
        dsts

let post_recv t ~time ~dst ~name ~kind ~token =
  let r =
    { r_seq = next_seq t; r_time = time; r_dst = dst; r_kind = kind;
      r_token = token }
  in
  let sq = send_queue t name in
  match take_send sq ~dst with
  | Some s -> make_delivery t ~name s r
  | None -> push_recv (recv_queue t name) r

let has_delivery t = not (Heap.is_empty t.deliveries)
let peek_delivery t = Heap.peek t.deliveries

let pop_delivery t =
  match Heap.pop t.deliveries with
  | None -> None
  | Some d ->
      occ_sub t d.src d.bytes;
      occ_sub t d.dst d.bytes;
      Some d

(* Pending queries preserve the seed's output exactly: every waiting
   operation, projected and sorted by [compare]. Linear in the number
   of pending operations — diagnostics only, never on the hot path. *)
let pending_sends t =
  Hashtbl.fold
    (fun name sq acc ->
      let proj (s : send) acc = (name, s.s_kind, s.s_src) :: acc in
      let acc = Queue.fold (fun acc s -> proj s acc) acc sq.s_any in
      Hashtbl.fold
        (fun _ q acc -> Queue.fold (fun acc s -> proj s acc) acc q)
        sq.s_to acc)
    t.sends []
  |> List.sort compare

let pending_recvs t =
  Hashtbl.fold
    (fun name rq acc ->
      (* [r_all] holds every live receive (plus lazily-discarded
         duplicates, filtered by [r_gone]). *)
      Queue.fold
        (fun acc (r : recv) ->
          if Hashtbl.mem rq.r_gone r.r_seq then acc
          else (name, r.r_kind, r.r_dst) :: acc)
        acc rq.r_all)
    t.recvs []
  |> List.sort compare

let messages_matched t = t.matched
let bytes_matched t = t.bytes
let peak_inflight t = Array.copy t.occ_peak
