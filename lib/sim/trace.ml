type event =
  | Send_init of { time : float; pid : int; name : string; kind : string }
  | Recv_init of { time : float; pid : int; name : string; kind : string }
  | Delivered of {
      time : float;
      src : int;
      dst : int;
      name : string;
      kind : string;
      bytes : int;
    }
  | Blocked of { time : float; pid : int; on : string }
  | Unblocked of { time : float; pid : int }
  | Note of { time : float; pid : int; msg : string }
  | Dropped of {
      time : float;
      src : int;
      dst : int;
      name : string;
      attempt : int;
      what : string; (* "data" or "ack" *)
    }
  | Retransmit of {
      time : float;
      src : int;
      dst : int;
      name : string;
      attempt : int;
    }
  | Ack of { time : float; src : int; dst : int; name : string }
  | Duped of { time : float; src : int; dst : int; name : string }
  | Nic_drop of { time : float; pid : int; src : int; name : string }
  | Nic_redirect of {
      time : float;
      pid : int;
      src : int;
      name : string;
      dest : int;
    }
  | Nic_absorb of {
      time : float;
      pid : int;
      src : int;
      name : string;
      slot : int;
    }
  | Nic_emit of { time : float; pid : int; name : string; parts : int }
  | Nic_fanout of { time : float; pid : int; name : string; copies : int }

type t = { enabled : bool; mutable events : event list (* reversed *) }

let create ~enabled = { enabled; events = [] }
let enabled t = t.enabled
let emit t e = if t.enabled then t.events <- e :: t.events
let events t = List.rev t.events

let pp_event ppf = function
  | Send_init { time; pid; name; kind } ->
      Format.fprintf ppf "[%10.1f] P%d send-init  %-6s %s" time (pid + 1) kind
        name
  | Recv_init { time; pid; name; kind } ->
      Format.fprintf ppf "[%10.1f] P%d recv-init  %-6s %s" time (pid + 1) kind
        name
  | Delivered { time; src; dst; name; kind; bytes } ->
      Format.fprintf ppf "[%10.1f] P%d -> P%d delivered %-6s %s (%dB)" time
        (src + 1) (dst + 1) kind name bytes
  | Blocked { time; pid; on } ->
      Format.fprintf ppf "[%10.1f] P%d blocked on %s" time (pid + 1) on
  | Unblocked { time; pid } ->
      Format.fprintf ppf "[%10.1f] P%d unblocked" time (pid + 1)
  | Note { time; pid; msg } ->
      Format.fprintf ppf "[%10.1f] P%d %s" time (pid + 1) msg
  | Dropped { time; src; dst; name; attempt; what } ->
      Format.fprintf ppf "[%10.1f] P%d -> P%d DROPPED %s %s (attempt %d)"
        time (src + 1) (dst + 1) what name attempt
  | Retransmit { time; src; dst; name; attempt } ->
      Format.fprintf ppf "[%10.1f] P%d -> P%d retransmit %s (attempt %d)"
        time (src + 1) (dst + 1) name attempt
  | Ack { time; src; dst; name } ->
      Format.fprintf ppf "[%10.1f] P%d ack -> P%d %s" time (dst + 1)
        (src + 1) name
  | Duped { time; src; dst; name } ->
      Format.fprintf ppf "[%10.1f] P%d -> P%d duplicate suppressed %s" time
        (src + 1) (dst + 1) name
  | Nic_drop { time; pid; src; name } ->
      Format.fprintf ppf "[%10.1f] P%d nic: dropped %s from P%d" time
        (pid + 1) name (src + 1)
  | Nic_redirect { time; pid; src; name; dest } ->
      Format.fprintf ppf "[%10.1f] P%d nic: redirect %s from P%d -> P%d" time
        (pid + 1) name (src + 1) (dest + 1)
  | Nic_absorb { time; pid; src; name; slot } ->
      Format.fprintf ppf "[%10.1f] P%d nic: absorb %s from P%d (slot %d)"
        time (pid + 1) name (src + 1) slot
  | Nic_emit { time; pid; name; parts } ->
      Format.fprintf ppf "[%10.1f] P%d nic: emit %s (%d parts combined)" time
        (pid + 1) name parts
  | Nic_fanout { time; pid; name; copies } ->
      Format.fprintf ppf "[%10.1f] P%d nic: fanout %s x%d" time (pid + 1)
        name copies

let pp ppf t =
  List.iter (fun e -> Format.fprintf ppf "%a@." pp_event e) (events t)

type stats = {
  makespan : float;
  messages : int;
  bytes : int;
  ownership_transfers : int;
  guard_evals : int;
  guard_hits : int;
  busy : float array;
  finish : float array;
  peak_storage : int array;
  statements : int;
  unmatched_sends : int;
  unmatched_recvs : int;
  retransmits : int;
  acks : int;
  dup_suppressed : int;
  packets_dropped : int;
  net_overhead_bytes : int;
  link_failures : int;
  nic_packets : int;
  nic_filtered : int;
  nic_aggregated : int;
  nic_emitted : int;
  nic_fanout_copies : int;
  nic_msgs_saved : int;
  nic_bytes : int;
  peak_inflight_bytes : int array;
  redist_stages : int;
}

let max_peak_inflight s = Array.fold_left max 0 s.peak_inflight_bytes

let idle_fraction s =
  let n = Array.length s.busy in
  if n = 0 || s.makespan <= 0.0 then 0.0
  else
    let total_busy = Array.fold_left ( +. ) 0.0 s.busy in
    1.0 -. (total_busy /. (float_of_int n *. s.makespan))

let pp_stats ppf s =
  Format.fprintf ppf
    "makespan=%.1f msgs=%d bytes=%d ownership=%d guards=%d/%d idle=%.1f%% \
     stmts=%d%s"
    s.makespan s.messages s.bytes s.ownership_transfers s.guard_hits
    s.guard_evals
    (100.0 *. idle_fraction s)
    s.statements
    (if s.unmatched_sends > 0 || s.unmatched_recvs > 0 then
       Printf.sprintf " UNMATCHED(s=%d,r=%d)" s.unmatched_sends
         s.unmatched_recvs
     else "");
  if
    s.retransmits > 0 || s.acks > 0 || s.dup_suppressed > 0
    || s.packets_dropped > 0 || s.link_failures > 0
  then
    Format.fprintf ppf
      " net(rexmit=%d acks=%d dups=%d drops=%d +%dB%s)" s.retransmits
      s.acks s.dup_suppressed s.packets_dropped s.net_overhead_bytes
      (if s.link_failures > 0 then
         Printf.sprintf " LINK_FAILURES=%d" s.link_failures
       else "");
  if s.nic_packets > 0 then
    Format.fprintf ppf
      " nic(pkts=%d filtered=%d agg=%d emit=%d fanout=%d saved=%d %dB)"
      s.nic_packets s.nic_filtered s.nic_aggregated s.nic_emitted
      s.nic_fanout_copies s.nic_msgs_saved s.nic_bytes;
  if s.redist_stages > 0 then
    Format.fprintf ppf " redist(stages=%d peak_inflight=%dB)" s.redist_stages
      (max_peak_inflight s)
