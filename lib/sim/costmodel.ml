type t = {
  name : string;
  time_flop : float;
  time_int_op : float;
  time_mem : float;
  time_guard : float;
  time_desc : float;
  time_send_init : float;
  time_recv_init : float;
  alpha : float;
  beta : float;
  elem_bytes : int;
  header_bytes : int;
  time_owner_admin : float;
  nic_serialize : bool;
  nic_alpha : float;
  nic_beta : float;
  nic_op : float;
}

let message_passing =
  {
    name = "message_passing";
    time_flop = 1.0;
    time_int_op = 0.5;
    time_mem = 1.0;
    time_guard = 5.0;
    time_desc = 2.0;
    time_send_init = 200.0;
    time_recv_init = 200.0;
    alpha = 2000.0;
    beta = 0.5;
    elem_bytes = 8;
    header_bytes = 16;
    time_owner_admin = 50.0;
    nic_serialize = false;
    (* The programmable-NIC fabric (lib/nic): a fabric hop is far
       cheaper than an endpoint message (no software send/recv
       initiation, switch-port latency instead of end-to-end alpha),
       and running a verified NIC program costs nic_op per
       instruction — all dyadic so batched charges stay exact. *)
    nic_alpha = 50.0;
    nic_beta = 0.25;
    nic_op = 0.5;
  }

let shared_address =
  {
    message_passing with
    name = "shared_address";
    time_send_init = 20.0;
    time_recv_init = 20.0;
    alpha = 150.0;
    beta = 0.25;
  }

let idealized =
  {
    message_passing with
    name = "idealized";
    time_send_init = 0.0;
    time_recv_init = 0.0;
    alpha = 0.0;
    beta = 0.0;
    time_owner_admin = 0.0;
    nic_alpha = 0.0;
    nic_beta = 0.0;
    nic_op = 0.0;
  }

(* A machine whose NICs are built for in-network compute: same hosts
   as [message_passing], but the programmable fabric is an order of
   magnitude cheaper per hop and per instruction (distinct alpha/beta
   for NIC-originated traffic).  Used to ask "what if the network
   were the accelerator" without touching endpoint costs. *)
let nic_compute =
  {
    message_passing with
    name = "nic_compute";
    nic_alpha = 5.0;
    nic_beta = 0.03125;
    nic_op = 0.0625;
  }

(* Batched charging support for the staged executor: a tally counts
   chargeable operations of a straight-line region at compile time;
   the region then charges [tally_cost] once per execution instead of
   once per operation.  All built-in per-op times are small dyadic
   rationals, so [n * c] is bit-identical to charging [c] n times. *)
type tally = { n_int_ops : int; n_mems : int; n_guards : int }

let tally_zero = { n_int_ops = 0; n_mems = 0; n_guards = 0 }
let tally_int_op = { tally_zero with n_int_ops = 1 }
let tally_mem = { tally_zero with n_mems = 1 }
let tally_guard = { tally_zero with n_guards = 1 }

let tally_add a b =
  {
    n_int_ops = a.n_int_ops + b.n_int_ops;
    n_mems = a.n_mems + b.n_mems;
    n_guards = a.n_guards + b.n_guards;
  }

let tally_is_zero t = t.n_int_ops = 0 && t.n_mems = 0 && t.n_guards = 0

let tally_cost cm t =
  (float_of_int t.n_int_ops *. cm.time_int_op)
  +. (float_of_int t.n_mems *. cm.time_mem)
  +. (float_of_int t.n_guards *. cm.time_guard)

let with_network t ~alpha ~beta =
  { t with name = Printf.sprintf "%s(a=%g,b=%g)" t.name alpha beta; alpha; beta }

let serialized t = { t with name = t.name ^ "+nic"; nic_serialize = true }

let message_bytes t ~elems = (elems * t.elem_bytes) + t.header_bytes
let transfer_time t ~bytes = t.alpha +. (t.beta *. float_of_int bytes)

let pp ppf t =
  Format.fprintf ppf
    "%s: flop=%g mem=%g send_init=%g alpha=%g beta=%g/B" t.name t.time_flop
    t.time_mem t.time_send_init t.alpha t.beta
